// Package queueing provides classical analytic results — M/M/1, M/M/c and
// Jackson-network steady-state formulas — used as validation baselines for
// the simulator and as the "traditional queueing theory" point of comparison
// the paper contrasts itself against.
package queueing

import (
	"fmt"
	"math"
)

// MM1 summarizes a stable M/M/1 queue with arrival rate Lambda and service
// rate Mu.
type MM1 struct{ Lambda, Mu float64 }

// NewMM1 returns the queue, with an error when parameters are invalid or
// the queue is unstable (ρ >= 1), in which case steady-state quantities do
// not exist.
func NewMM1(lambda, mu float64) (MM1, error) {
	if lambda <= 0 || mu <= 0 {
		return MM1{}, fmt.Errorf("queueing: rates must be positive (λ=%v, µ=%v)", lambda, mu)
	}
	if lambda >= mu {
		return MM1{}, fmt.Errorf("queueing: unstable M/M/1 (ρ=%v >= 1)", lambda/mu)
	}
	return MM1{Lambda: lambda, Mu: mu}, nil
}

// Rho returns the utilization λ/µ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// MeanService returns E[S] = 1/µ.
func (q MM1) MeanService() float64 { return 1 / q.Mu }

// MeanWait returns the steady-state mean waiting time in queue,
// W_q = ρ/(µ-λ).
func (q MM1) MeanWait() float64 { return q.Rho() / (q.Mu - q.Lambda) }

// MeanResponse returns W = 1/(µ-λ).
func (q MM1) MeanResponse() float64 { return 1 / (q.Mu - q.Lambda) }

// MeanNumber returns L = ρ/(1-ρ) (Little's law: L = λW).
func (q MM1) MeanNumber() float64 { r := q.Rho(); return r / (1 - r) }

// ResponseCDF returns P(response <= t) = 1 - exp(-(µ-λ)t).
func (q MM1) ResponseCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return -math.Expm1(-(q.Mu - q.Lambda) * t)
}

// MMC summarizes a stable M/M/c queue.
type MMC struct {
	Lambda, Mu float64
	C          int
}

// NewMMC returns the queue, rejecting invalid or unstable parameters
// (λ >= cµ).
func NewMMC(lambda, mu float64, c int) (MMC, error) {
	if lambda <= 0 || mu <= 0 || c <= 0 {
		return MMC{}, fmt.Errorf("queueing: invalid M/M/c parameters (λ=%v, µ=%v, c=%d)", lambda, mu, c)
	}
	if lambda >= float64(c)*mu {
		return MMC{}, fmt.Errorf("queueing: unstable M/M/c (ρ=%v >= 1)", lambda/(float64(c)*mu))
	}
	return MMC{Lambda: lambda, Mu: mu, C: c}, nil
}

// Rho returns the per-server utilization λ/(cµ).
func (q MMC) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// ErlangC returns the probability an arriving job must wait (all servers
// busy), computed with a numerically stable recurrence.
func (q MMC) ErlangC() float64 {
	a := q.Lambda / q.Mu // offered load
	c := q.C
	// Erlang B recurrence: B(0)=1, B(k) = a·B(k-1)/(k + a·B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := q.Rho()
	return b / (1 - rho*(1-b))
}

// MeanWait returns the steady-state mean waiting time in queue,
// W_q = C(c,a)/(cµ - λ).
func (q MMC) MeanWait() float64 {
	return q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
}

// MeanResponse returns W_q + 1/µ.
func (q MMC) MeanResponse() float64 { return q.MeanWait() + 1/q.Mu }

// ---------------------------------------------------------------------------
// Jackson networks

// Jackson is an open Jackson network: exogenous Poisson arrivals Gamma[i]
// into each queue, routing matrix R (R[i][j] = probability of moving from
// queue i to queue j; leftover mass exits), and service rates Mu.
type Jackson struct {
	Gamma []float64
	R     [][]float64
	Mu    []float64

	lambda []float64 // solved effective arrival rates
}

// NewJackson validates the network and solves the traffic equations
// λ = γ + Rᵀλ by fixed-point iteration (the routing matrix is substochastic
// so the iteration converges geometrically).
func NewJackson(gamma []float64, r [][]float64, mu []float64) (*Jackson, error) {
	n := len(gamma)
	if n == 0 || len(r) != n || len(mu) != n {
		return nil, fmt.Errorf("queueing: jackson dimensions mismatch")
	}
	for i := 0; i < n; i++ {
		if gamma[i] < 0 {
			return nil, fmt.Errorf("queueing: negative exogenous rate γ[%d]", i)
		}
		if mu[i] <= 0 {
			return nil, fmt.Errorf("queueing: non-positive service rate µ[%d]", i)
		}
		if len(r[i]) != n {
			return nil, fmt.Errorf("queueing: routing row %d has length %d", i, len(r[i]))
		}
		var row float64
		for j := 0; j < n; j++ {
			if r[i][j] < 0 {
				return nil, fmt.Errorf("queueing: negative routing probability R[%d][%d]", i, j)
			}
			row += r[i][j]
		}
		if row > 1+1e-9 {
			return nil, fmt.Errorf("queueing: routing row %d sums to %v > 1", i, row)
		}
	}
	j := &Jackson{Gamma: gamma, R: r, Mu: mu}
	lam := append([]float64(nil), gamma...)
	for iter := 0; iter < 100000; iter++ {
		next := append([]float64(nil), gamma...)
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				next[k] += lam[i] * r[i][k]
			}
		}
		var diff float64
		for i := range next {
			diff += math.Abs(next[i] - lam[i])
		}
		lam = next
		if diff < 1e-12 {
			break
		}
	}
	j.lambda = lam
	for i := 0; i < n; i++ {
		if lam[i] >= mu[i] {
			return nil, fmt.Errorf("queueing: jackson queue %d unstable (λ=%v >= µ=%v)", i, lam[i], mu[i])
		}
	}
	return j, nil
}

// Lambda returns the solved effective arrival rate of each queue.
func (j *Jackson) Lambda() []float64 {
	return append([]float64(nil), j.lambda...)
}

// MeanWait returns the steady-state mean waiting time at each queue (by the
// product-form result, each queue behaves as M/M/1 with its effective rate).
func (j *Jackson) MeanWait() []float64 {
	out := make([]float64, len(j.lambda))
	for i := range out {
		rho := j.lambda[i] / j.Mu[i]
		out[i] = rho / (j.Mu[i] - j.lambda[i])
	}
	return out
}

// MeanNumber returns the steady-state mean number of jobs at each queue.
func (j *Jackson) MeanNumber() []float64 {
	out := make([]float64, len(j.lambda))
	for i := range out {
		rho := j.lambda[i] / j.Mu[i]
		out[i] = rho / (1 - rho)
	}
	return out
}

// MeanResponseTotal returns the network-wide mean end-to-end response time
// by Little's law: Σ L_i / Σ γ_i.
func (j *Jackson) MeanResponseTotal() float64 {
	var l, g float64
	for _, v := range j.MeanNumber() {
		l += v
	}
	for _, v := range j.Gamma {
		g += v
	}
	return l / g
}
