package queueinf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPosteriorDiagnosticsPublic(t *testing.T) {
	rng := NewRNG(21)
	net, err := MM1(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	working := truth.Clone()
	working.ObserveTasks(rng, 0.3)
	params, err := func() (Params, error) {
		em, err := StEM(working.Clone(), rng, EMOptions{Iterations: 200})
		if err != nil {
			return Params{}, err
		}
		return em.Params, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	d, err := PosteriorDiagnostics(working, params, rng, DiagnosticsOptions{Chains: 2, Sweeps: 200, BurnIn: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RHat) != working.NumQueues || d.Chains != 2 {
		t.Fatalf("bad diagnostics shape: %+v", d)
	}
}

func TestGeneralStEMPublic(t *testing.T) {
	rng := NewRNG(22)
	net, err := MM1(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 400)
	if err != nil {
		t.Fatal(err)
	}
	working := truth.Clone()
	working.ObserveTasks(rng, 0.4)
	models := []ServiceModel{ExpModel{Rate: 2}, GammaModel{Shape: 1, Rate: 6}}
	res, err := GeneralStEM(working, models, rng, EMOptions{Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanService[1]-1.0/6) > 0.08 {
		t.Fatalf("general StEM mean service %v, want ≈%v", res.MeanService[1], 1.0/6)
	}
}

func TestModelSelectionPublic(t *testing.T) {
	rng := NewRNG(23)
	net, err := MM1(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	working := truth.Clone()
	working.ObserveTasks(rng, 0.5)
	res, err := SelectServiceModel(working, DefaultModelCandidates(), rng, EMOptions{Iterations: 150}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 4 {
		t.Fatalf("ranked %d families, want 4", len(res.Ranked))
	}
	if res.Best().Name == "" {
		t.Fatal("empty winner")
	}
}

func TestStreamingAndWindowsPublic(t *testing.T) {
	rng := NewRNG(24)
	net, err := MM1(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 400)
	if err != nil {
		t.Fatal(err)
	}
	truth.ObserveTasks(rng, 0.4)
	blocks, err := StreamingEstimate(truth.Clone(), rng, StreamingOptions{Blocks: 2, EM: EMOptions{Iterations: 150}})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || blocks[0].ToTask != 200 {
		t.Fatalf("blocks wrong: %+v", blocks)
	}
	em, err := StEM(truth.Clone(), rng, EMOptions{Iterations: 150})
	if err != nil {
		t.Fatal(err)
	}
	working := truth.Clone()
	if err := (OrderInitializer{}).Initialize(working, em.Params); err != nil {
		t.Fatal(err)
	}
	ws, err := PosteriorWindows(working, em.Params, rng, PosteriorOptions{Sweeps: 30}, 0, truth.TaskExit(399), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != truth.NumQueues || len(ws[1]) != 4 {
		t.Fatalf("window shape wrong")
	}
}

func TestSteadyStateEstimatePublic(t *testing.T) {
	rng := NewRNG(25)
	net, err := MM1(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 1500)
	if err != nil {
		t.Fatal(err)
	}
	truth.ObserveTasks(rng, 0.4)
	b := SteadyStateEstimate(truth)
	if math.IsNaN(b.MeanService[1]) {
		t.Fatal("baseline failed with observations present")
	}
}

func TestWriteTraceCSVPublic(t *testing.T) {
	rng := NewRNG(26)
	net, err := MM1(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(truth, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "arrival") {
		t.Fatal("CSV missing header")
	}
	if SplitRNG(rng) == nil {
		t.Fatal("split rng nil")
	}
}
