package queueinf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/qnet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Capacity planning — the first application the paper lists ("queueing
// models predict the explosion in system latency under high workload ...
// allowing the model to extrapolate from performance under low load to
// performance under high load"). EstimatedNetwork turns a partial trace
// plus StEM parameters back into a generative model; Forecast re-simulates
// it under scaled load and summarizes the predicted latency distribution.

// EstimatedNetwork reconstructs a network from a trace and estimated
// rates: exponential services at the estimated rates and empirical Markov
// routing over queues. names may be nil.
func EstimatedNetwork(es *EventSet, params Params, names []string) (*Network, error) {
	return qnet.FromTrace(es, params.Rates, names)
}

// Forecast is the predicted end-to-end latency under a hypothetical load.
type Forecast struct {
	// LambdaScale is the arrival-rate multiplier relative to the
	// estimated λ.
	LambdaScale float64
	// Lambda is the absolute simulated arrival rate.
	Lambda float64
	// MeanResponse and quantiles of the simulated end-to-end response.
	MeanResponse  float64
	P50, P95, P99 float64
	// Saturated reports whether some queue's offered load ρ_q =
	// λ·visits_q/µ_q reaches 1 — the latency-explosion regime, where the
	// simulated mean keeps growing with the horizon instead of
	// converging.
	Saturated bool
	// MaxRho is the largest per-queue offered load ρ_q.
	MaxRho float64
	// MaxUtilization is the largest per-queue empirical utilization in
	// the simulated forecast (≤ 1 by construction).
	MaxUtilization float64
}

// WhatIf simulates the estimated network under the estimated arrival rate
// scaled by each factor, pushing tasks tasks through per scenario, and
// returns one Forecast per factor (sorted by factor). This answers the
// capacity question "at what load does the system become unresponsive?"
// from a fraction of the original trace.
func WhatIf(es *EventSet, params Params, rng *RNG, tasks int, factors ...float64) ([]Forecast, error) {
	if tasks <= 0 {
		return nil, fmt.Errorf("queueinf: WhatIf needs positive task count")
	}
	if len(factors) == 0 {
		return nil, fmt.Errorf("queueinf: WhatIf needs at least one load factor")
	}
	net, err := EstimatedNetwork(es, params, nil)
	if err != nil {
		return nil, err
	}
	lambda := params.Rates[0]
	visits := net.Routing.ExpectedVisits()
	var out []Forecast
	for _, f := range factors {
		if !(f > 0) {
			return nil, fmt.Errorf("queueinf: load factor %v must be positive", f)
		}
		scaled := net.Queues
		// Replace q0's interarrival distribution with the scaled rate.
		scaledQueues := append([]Queue(nil), scaled...)
		scaledQueues[0].Service = Exponential(lambda * f)
		scaledNet, err := qnet.New(scaledQueues, net.Routing)
		if err != nil {
			return nil, err
		}
		tr, err := sim.Run(scaledNet, rng, sim.Options{Tasks: tasks})
		if err != nil {
			return nil, err
		}
		responses := make([]float64, tr.NumTasks)
		for k := range responses {
			responses[k] = tr.TaskExit(k) - tr.TaskEntry(k)
		}
		qs := stats.Quantiles(responses, 0.5, 0.95, 0.99)
		fc := Forecast{
			LambdaScale:  f,
			Lambda:       lambda * f,
			MeanResponse: stats.Mean(responses),
			P50:          qs[0],
			P95:          qs[1],
			P99:          qs[2],
		}
		for q := 1; q < tr.NumQueues; q++ {
			if u := tr.Utilization(q); !math.IsNaN(u) && u > fc.MaxUtilization {
				fc.MaxUtilization = u
			}
			if rho := lambda * f * visits[q] / params.Rates[q]; rho > fc.MaxRho {
				fc.MaxRho = rho
			}
		}
		fc.Saturated = fc.MaxRho >= 1
		out = append(out, fc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LambdaScale < out[j].LambdaScale })
	return out, nil
}
