package queueinf

// The benchmark harness: one testing.B benchmark per paper artifact
// (Figure 4 left/right, the §5.1 variance table, Figure 5) at reduced but
// structurally identical sizes, plus micro-benchmarks of the pipeline
// stages and the ablation benches called out in DESIGN.md §6. The full-size
// regeneration of each figure lives in cmd/qexperiments.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// benchFig4Config is the Figure 4 setup at bench scale.
func benchFig4Config() experiment.Fig4Config {
	cfg := experiment.DefaultFig4Config()
	cfg.Structures = [][3]int{{1, 2, 4}}
	cfg.Tasks = 300
	cfg.Reps = 2
	cfg.Fractions = []float64{0.05, 0.25}
	cfg.EMIterations = 200
	cfg.PostSweeps = 40
	cfg.Workers = 1
	return cfg
}

// BenchmarkFig4ServiceError regenerates the Figure 4 (left) data points —
// service-time absolute error versus observation fraction.
func BenchmarkFig4ServiceError(b *testing.B) {
	cfg := benchFig4Config()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig4(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if svc, _ := res.MedianErrors(0.25); svc > 0.15 {
			b.Fatalf("median service error %v implausibly large", svc)
		}
	}
}

// BenchmarkFig4ServiceErrorParallel is the same artifact regenerated with
// the chromatic parallel sweep engine inside each run (GibbsWorkers =
// NumCPU, run-level Workers = 1 so the samplers own the cores).
func BenchmarkFig4ServiceErrorParallel(b *testing.B) {
	cfg := benchFig4Config()
	cfg.GibbsWorkers = runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig4(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if svc, _ := res.MedianErrors(0.25); svc > 0.15 {
			b.Fatalf("median service error %v implausibly large", svc)
		}
	}
}

// BenchmarkFig4WaitingError regenerates the Figure 4 (right) data points —
// waiting-time absolute error versus observation fraction.
func BenchmarkFig4WaitingError(b *testing.B) {
	cfg := benchFig4Config()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig4(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if _, wait := res.MedianErrors(0.25); wait < 0 {
			b.Fatal("negative error")
		}
	}
}

// BenchmarkVarianceTable regenerates the §5.1 in-text estimator-variance
// comparison (StEM vs. observed-service baseline).
func BenchmarkVarianceTable(b *testing.B) {
	cfg := benchFig4Config()
	cfg.Reps = 4
	cfg.Fractions = []float64{0.1}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig4(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		sv, bv, _ := res.VarianceComparison()
		if !(sv > 0 && bv > 0) {
			b.Fatal("degenerate variances")
		}
	}
}

// BenchmarkFig5Webapp regenerates the Figure 5 sweep (both panels) on a
// scaled-down web-application trace.
func BenchmarkFig5Webapp(b *testing.B) {
	cfg := experiment.DefaultFig5Config()
	cfg.App.Requests = 600
	cfg.App.Duration = 750
	cfg.Fractions = []float64{0.1, 0.5}
	cfg.EMIterations = 150
	cfg.PostSweeps = 20
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFig5(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Pipeline stage micro-benchmarks

// benchTrace builds the standard 1000-task three-tier trace masked at 10%.
func benchTrace(b *testing.B) (*EventSet, *Network) {
	b.Helper()
	rng := xrand.New(1)
	net, err := ThreeTier(10, 5, [3]int{1, 2, 4})
	if err != nil {
		b.Fatal(err)
	}
	truth, err := sim.Run(net, rng, sim.Options{Tasks: 1000})
	if err != nil {
		b.Fatal(err)
	}
	truth.ObserveTasks(rng, 0.10)
	return truth, net
}

// BenchmarkSimulate measures ground-truth generation (the substrate the
// paper's testbed provides).
func BenchmarkSimulate(b *testing.B) {
	rng := xrand.New(1)
	net, err := ThreeTier(10, 5, [3]int{1, 2, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(net, rng, sim.Options{Tasks: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTraceLarge builds the parallel-sweep workload: an 11-queue
// three-tier network (tiers {2,4,4}), 2000 tasks (22000 events), masked at
// 10% — the scale where chromatic sharding has enough independent moves
// per color class to keep several workers busy.
func benchTraceLarge(b *testing.B) (*EventSet, *Network) {
	b.Helper()
	rng := xrand.New(1)
	net, err := ThreeTier(10, 5, [3]int{2, 4, 4})
	if err != nil {
		b.Fatal(err)
	}
	truth, err := sim.Run(net, rng, sim.Options{Tasks: 2000})
	if err != nil {
		b.Fatal(err)
	}
	truth.ObserveTasks(rng, 0.10)
	return truth, net
}

// benchWorkerGrid is the worker axis shared by the sweep and posterior
// benchmarks: the legacy sequential scan (seq), the chromatic engine at 1
// and 2 workers, and at one worker per CPU.
func benchWorkerGrid() []struct {
	name    string
	workers int
} {
	grid := []struct {
		name    string
		workers int
	}{
		{"seq", 0},
		{"chromatic-w1", 1},
		{"chromatic-w2", 2},
	}
	if n := runtime.NumCPU(); n > 2 {
		grid = append(grid, struct {
			name    string
			workers int
		}{fmt.Sprintf("chromatic-w%d", n), n})
	}
	return grid
}

// BenchmarkGibbsSweep measures one systematic Gibbs sweep over a
// 22000-event trace at 10% observation — the unit the paper's running-time
// discussion is about ("the sampler scales primarily in the number of
// unobserved arrival events") — across the sweep engines: the sequential
// scan and the chromatic parallel engine at 1, 2, and NumCPU workers. The
// chromatic variants produce bit-identical chains at every worker count.
func BenchmarkGibbsSweep(b *testing.B) {
	truth, net := benchTraceLarge(b)
	params, err := core.NewParams(net.ServiceRates())
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range benchWorkerGrid() {
		b.Run(bc.name, func(b *testing.B) {
			working := truth.Clone()
			if err := (core.OrderInitializer{}).Initialize(working, params); err != nil {
				b.Fatal(err)
			}
			var g *core.Gibbs
			if bc.workers == 0 {
				g, err = core.NewGibbs(working, params, xrand.New(2))
			} else {
				g, err = core.NewParallelGibbs(working, params, xrand.New(2), bc.workers)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Sweep()
			}
		})
	}
	// traced-seq: the sequential engine with a SweepTracer attached but
	// sampling off — the default qserved configuration. The span hook
	// reduces to one nil-parent branch per sweep, so benchdiff gates this
	// row at <= 1.05x seq ns/op with no allocs/op growth in the same run.
	b.Run("traced-seq", func(b *testing.B) {
		working := truth.Clone()
		if err := (core.OrderInitializer{}).Initialize(working, params); err != nil {
			b.Fatal(err)
		}
		g, err := core.NewGibbs(working, params, xrand.New(2))
		if err != nil {
			b.Fatal(err)
		}
		g.SetObserver(&obs.SweepTracer{
			Metrics: obs.NewSweepMetrics(obs.NewRegistry(), "bench"),
			Tracer:  obs.NewTracer(256), // sampling off: SetSampleEvery never called
			Stream:  "bench",
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Sweep()
		}
	})
}

// BenchmarkObservedGibbsSweep is BenchmarkGibbsSweep with a SweepObserver
// attached (the qserved telemetry hook): the per-sweep duration and
// moves-resampled histograms are atomics-only, so ns/op should match the
// unobserved rows and allocs/op must stay 0.
func BenchmarkObservedGibbsSweep(b *testing.B) {
	truth, net := benchTraceLarge(b)
	params, err := core.NewParams(net.ServiceRates())
	if err != nil {
		b.Fatal(err)
	}
	sm := obs.NewSweepMetrics(obs.NewRegistry(), "bench")
	for _, bc := range benchWorkerGrid() {
		b.Run(bc.name, func(b *testing.B) {
			working := truth.Clone()
			if err := (core.OrderInitializer{}).Initialize(working, params); err != nil {
				b.Fatal(err)
			}
			var g *core.Gibbs
			if bc.workers == 0 {
				g, err = core.NewGibbs(working, params, xrand.New(2))
			} else {
				g, err = core.NewParallelGibbs(working, params, xrand.New(2), bc.workers)
			}
			if err != nil {
				b.Fatal(err)
			}
			g.SetObserver(sm)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Sweep()
			}
		})
	}
}

// BenchmarkPosterior measures the full fixed-parameter posterior pass (30
// sweeps, incremental per-queue statistics) across the same worker grid,
// the way a steady-state caller runs it: working copies drawn from a
// ClonePool, results written into a reused summary via PosteriorInto, and
// sampler construction state (schedule, build buffers, worker pool) reused
// through a GibbsScratch — so bytes/op and allocs/op reflect the sampler
// itself rather than per-call buffer churn, and the chromatic rows are
// directly comparable to seq.
func BenchmarkPosterior(b *testing.B) {
	truth, net := benchTraceLarge(b)
	params, err := core.NewParams(net.ServiceRates())
	if err != nil {
		b.Fatal(err)
	}
	base := truth.Clone()
	if err := (core.OrderInitializer{}).Initialize(base, params); err != nil {
		b.Fatal(err)
	}
	for _, bc := range benchWorkerGrid() {
		b.Run(bc.name, func(b *testing.B) {
			var pool trace.ClonePool
			var sum core.PosteriorSummary
			var sc core.GibbsScratch
			defer sc.Close()
			run := func() {
				working := pool.Get(base)
				if err := core.PosteriorInto(&sum, working, params, xrand.New(3), core.PosteriorOptions{
					Sweeps: 30, Workers: bc.workers, Scratch: &sc,
				}); err != nil {
					b.Fatal(err)
				}
				pool.Put(working)
			}
			run() // steady state: grow the scratch, summary, and clone pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
	// traced-seq mirrors the sweep benchmark's row: the full posterior
	// pass with an unsampled SweepTracer observer, gated same-run against
	// seq by benchdiff.
	b.Run("traced-seq", func(b *testing.B) {
		tap := &obs.SweepTracer{
			Metrics: obs.NewSweepMetrics(obs.NewRegistry(), "bench"),
			Tracer:  obs.NewTracer(256),
			Stream:  "bench",
		}
		var pool trace.ClonePool
		var sum core.PosteriorSummary
		var sc core.GibbsScratch
		defer sc.Close()
		run := func() {
			working := pool.Get(base)
			if err := core.PosteriorInto(&sum, working, params, xrand.New(3), core.PosteriorOptions{
				Sweeps: 30, Observer: tap, Scratch: &sc,
			}); err != nil {
				b.Fatal(err)
			}
			pool.Put(working)
		}
		run()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}

// BenchmarkStEMIteration measures one StEM iteration (E-sweep + M-step).
func BenchmarkStEMIteration(b *testing.B) {
	truth, _ := benchTrace(b)
	working := truth.Clone()
	b.ResetTimer()
	b.ReportMetric(0, "allocs/op") // overwritten by -benchmem
	res, err := core.StEM(working, xrand.New(3), core.EMOptions{Iterations: b.N + 2, BurnIn: 1})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §6)

// BenchmarkInitializerOrder measures the default feasibility construction.
func BenchmarkInitializerOrder(b *testing.B) {
	truth, net := benchTrace(b)
	params, err := core.NewParams(net.ServiceRates())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		working := truth.Clone()
		if err := (core.OrderInitializer{}).Initialize(working, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInitializerLP measures the paper's LP initialization on a small
// trace (its dense simplex cost is why OrderInitializer is the default).
func BenchmarkInitializerLP(b *testing.B) {
	rng := xrand.New(4)
	net, err := ThreeTier(8, 4, [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	truth, err := sim.Run(net, rng, sim.Options{Tasks: 40})
	if err != nil {
		b.Fatal(err)
	}
	truth.ObserveTasks(rng, 0.3)
	params, err := core.NewParams(net.ServiceRates())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		working := truth.Clone()
		if err := (core.LPInitializer{}).Initialize(working, params); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Mean-field fast path (DESIGN.md §18)

// benchEventGrid is the event-count axis of the time-to-first-estimate
// comparison: the three-tier {2,4,4} network produces ~11 events per task,
// so these task counts land the traces at ~1k, ~10k, and ~100k events.
func benchEventGrid() []struct {
	name  string
	tasks int
} {
	return []struct {
		name  string
		tasks int
	}{
		{"ev1k", 91},
		{"ev10k", 909},
		{"ev100k", 9091},
	}
}

// benchTraceSized builds the three-tier trace at the given task count,
// masked at 10% — the same structure as benchTraceLarge at a chosen scale.
func benchTraceSized(b *testing.B, tasks int) *EventSet {
	b.Helper()
	rng := xrand.New(1)
	net, err := ThreeTier(10, 5, [3]int{2, 4, 4})
	if err != nil {
		b.Fatal(err)
	}
	truth, err := sim.Run(net, rng, sim.Options{Tasks: tasks})
	if err != nil {
		b.Fatal(err)
	}
	truth.ObserveTasks(rng, 0.10)
	return truth
}

// BenchmarkMeanFieldSolve measures the deterministic mean-field fast path
// the way qserved's first publish runs it: a working copy from a ClonePool,
// results into a reused summary/params via MeanFieldInto, and all solver
// state reused through a MeanFieldScratch. The steady state must be
// zero-alloc — benchdiff gates allocs/op at 0 and the ev10k row at >= 50x
// faster than the serve-default cold Gibbs path in the same run.
func BenchmarkMeanFieldSolve(b *testing.B) {
	for _, bc := range benchEventGrid() {
		b.Run(bc.name, func(b *testing.B) {
			truth := benchTraceSized(b, bc.tasks)
			var pool trace.ClonePool
			var sc core.MeanFieldScratch
			var sum core.PosteriorSummary
			var params core.Params
			run := func() {
				working := pool.Get(truth)
				if _, err := core.MeanFieldInto(&sum, &params, working, core.MeanFieldOptions{
					Scratch: &sc,
				}); err != nil {
					b.Fatal(err)
				}
				pool.Put(working)
			}
			run() // steady state: grow the scratch, summary, and clone pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkColdPosterior measures the serve-default cold time-to-first-
// estimate it replaces: a full StEM run (300 iterations) plus the posterior
// pass (40 sweeps) on the same traces. This is what a cold stream waited
// for before the fast path existed, and the denominator of the >= 50x gate.
func BenchmarkColdPosterior(b *testing.B) {
	for _, bc := range benchEventGrid() {
		b.Run(bc.name, func(b *testing.B) {
			truth := benchTraceSized(b, bc.tasks)
			var pool trace.ClonePool
			var sum core.PosteriorSummary
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				working := pool.Get(truth)
				res, err := core.StEM(working, xrand.New(7), core.EMOptions{Iterations: 300})
				if err != nil {
					b.Fatal(err)
				}
				if err := core.PosteriorInto(&sum, working, res.Params, xrand.New(8), core.PosteriorOptions{
					Sweeps: 40,
				}); err != nil {
					b.Fatal(err)
				}
				pool.Put(working)
			}
		})
	}
}

// BenchmarkMCEM5 measures Monte Carlo EM with 5 sweeps per E-step, for
// comparison against the same number of total sweeps of plain StEM
// (BenchmarkStEMIteration ×5).
func BenchmarkMCEM5(b *testing.B) {
	truth, _ := benchTrace(b)
	working := truth.Clone()
	b.ResetTimer()
	if _, err := core.MCEM(working, xrand.New(5), 5, core.EMOptions{Iterations: b.N + 2, BurnIn: 1}); err != nil {
		b.Fatal(err)
	}
}
