// Slowrequests: the paper's second diagnosis question — "during the
// execution of the 1% of requests that perform poorly, which system
// components receive the most load?" The bottleneck for slow requests can
// differ from the average bottleneck, e.g. when a storage device fails
// intermittently.
//
// The simulated system has a database whose service distribution is
// hyperexponential: most queries are fast, a few percent are very slow
// (an intermittently failing disk). On average the web tier dominates
// latency, but for the slowest requests the database does. The example
// recovers both facts from a posterior imputation computed from 20% of
// the trace.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/dist"
)

func main() {
	rng := queueinf.NewRNG(99)

	// Database: 95% of queries ~ Exp(20) (50 ms), 5% ~ Exp(0.5) (2 s).
	slowDB := dist.NewHyperexponential([]float64{0.95, 0.05}, []float64{20, 0.5})
	net, err := queueinf.Tiered(queueinf.Exponential(3), []queueinf.TierSpec{
		{Name: "web", Replicas: 1, Service: queueinf.Exponential(4)},
		{Name: "db", Replicas: 1, Service: slowDB},
	})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := queueinf.Simulate(net, rng, 1500)
	if err != nil {
		log.Fatal(err)
	}

	working := truth.Clone()
	working.ObserveTasks(rng, 0.20)
	em, err := queueinf.StEM(working, rng, queueinf.EMOptions{Iterations: 800})
	if err != nil {
		log.Fatal(err)
	}
	// working now holds a posterior imputation of every unobserved time;
	// analyze it exactly as if it were a complete trace.
	imputed := em.Sampler.Set()

	names := net.QueueNames()
	report := func(label string, tasks []int) {
		perQueue := make([]float64, imputed.NumQueues)
		var total float64
		for _, k := range tasks {
			for _, id := range imputed.ByTask[k] {
				e := imputed.Events[id]
				if e.Queue == 0 {
					continue
				}
				dt := imputed.ResponseTime(id) // wait + service at this queue
				perQueue[e.Queue] += dt
				total += dt
			}
		}
		fmt.Printf("%s:\n", label)
		for q := 1; q < imputed.NumQueues; q++ {
			fmt.Printf("  %-5s %5.1f%% of time in system\n", names[q], 100*perQueue[q]/total)
		}
	}

	// Rank tasks by imputed end-to-end response time.
	type taskResp struct {
		k    int
		resp float64
	}
	all := make([]taskResp, imputed.NumTasks)
	for k := range all {
		all[k] = taskResp{k, imputed.TaskExit(k) - imputed.TaskEntry(k)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].resp > all[j].resp })
	slow := make([]int, 0, len(all)/100)
	rest := make([]int, 0, len(all))
	for i, tr := range all {
		if i < len(all)/100 {
			slow = append(slow, tr.k)
		} else {
			rest = append(rest, tr.k)
		}
	}

	fmt.Printf("inferred from 20%% of tasks (estimated db mean service %.3fs; fast-query truth 0.05s, mixture mean %.3fs)\n\n",
		em.Params.MeanServiceTimes()[2], slowDB.Mean())
	report("average request", rest)
	fmt.Println()
	report(fmt.Sprintf("slowest 1%% of requests (%d tasks)", len(slow)), slow)
	fmt.Println("\nthe slow tail concentrates its time in the database — the intermittent")
	fmt.Println("fault — even though the average request spends most of its time at the web tier.")
}
