// Live: the paper's §5.2 workflow on genuinely *measured* data, served
// through the qserved daemon. A real three-tier HTTP application (load
// balancer → web servers with FIFO worker stations → database server) runs
// in this process for a few seconds under Poisson load; its wall-clock
// instrumentation is assembled into a trace and masked to 25% observation.
// Instead of calling the estimator directly, the example then does what a
// production deployment would: it starts an in-process qserved instance,
// replays the masked trace through the HTTP ingest API at 10x speed, polls
// the estimate endpoint until the posterior covers every replayed task,
// and compares the served estimates against the full measurements.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/livedemo"
	"repro/internal/serve"
)

func main() {
	cfg := livedemo.DefaultConfig()
	cfg.Requests = 400
	cfg.Rate = 80
	cfg.Weights = []float64{1, 1, 0.05} // web2 is starved, like the paper's outlier

	fmt.Printf("driving %d real HTTP requests at %.0f/s through %d web servers + db...\n",
		cfg.Requests, cfg.Rate, cfg.WebServers)
	start := time.Now()
	es, names, st, err := livedemo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d events in %.1fs (timestamp repairs: %d, max adjust %.3gms)\n\n",
		len(es.Events), time.Since(start).Seconds(), st.Repairs, st.MaxAdjust*1000)

	working := es.Clone()
	working.ObserveTasks(queueinf.NewRNG(5), 0.25)

	// Stand up a real qserved instance on a loopback port.
	srv := serve.New(serve.StreamConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("qserved listening on %s\n", baseURL)

	ctx := context.Background()
	client := serve.NewClient(baseURL)
	streamCfg := serve.StreamConfig{
		NumQueues: working.NumQueues, WindowTasks: working.NumTasks,
		MinTasks: 50, IntervalMS: 50, EMIters: 600, PostSweeps: 40,
	}
	if err := client.CreateStream(ctx, "live", streamCfg); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replaying the masked trace at 10x speed...\n")
	stats, err := serve.Replay(ctx, client, working, serve.ReplayOptions{
		Stream: "live", Speed: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent %d events in %d batches over %.1fs (%d rejected)\n\n",
		stats.Events, stats.Batches, stats.Duration.Seconds(), stats.Rejected)

	wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	est, err := client.WaitForEpoch(wctx, "live", uint64(stats.Tasks))
	if err != nil {
		log.Fatal(err)
	}

	full := es.MeanServiceByQueue()
	fmt.Printf("served estimate: seq %d, window %d tasks, λ̂ = %.2f/s, staleness %.0fms\n\n",
		est.Seq, est.WindowTasks, est.Lambda, est.StalenessMS)
	fmt.Printf("%-6s  %-8s  %-24s  %-10s\n", "queue", "requests", "mean service est/meas (ms)", "mean wait (ms)")
	for q := 1; q < es.NumQueues; q++ {
		marker := "  "
		if q == est.Bottleneck {
			marker = "->"
		}
		fmt.Printf("%s %-5s %-8d  %9.2f / %-9.2f     %8.2f\n",
			marker, names[q], len(es.ByQueue[q]),
			float64(est.MeanService[q])*1000, full[q]*1000, float64(est.MeanWait[q])*1000)
	}
	fmt.Printf("\nconfigured means: web %.1fms, db %.1fms — estimates from 25%% of a real\n",
		cfg.WebMean.Seconds()*1000, cfg.DBMean.Seconds()*1000)
	fmt.Println("HTTP trace, served over the daemon's ingest + estimate API;")
	fmt.Printf("the starved %s, with only %d requests, is the unstable outlier.\n",
		names[cfg.WebServers], len(es.ByQueue[cfg.WebServers]))

	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Print(err)
	}
	srv.Close()
}
