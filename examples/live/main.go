// Live: the paper's §5.2 workflow on genuinely *measured* data. A real
// three-tier HTTP application (load balancer → web servers with FIFO
// worker stations → database server) runs in this process for a few
// seconds under Poisson load; its wall-clock instrumentation is assembled
// into a trace, masked to 25% observation, and the estimates are compared
// against the full measurements and the configured service times.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/livedemo"
)

func main() {
	cfg := livedemo.DefaultConfig()
	cfg.Requests = 400
	cfg.Rate = 80
	cfg.Weights = []float64{1, 1, 0.05} // web2 is starved, like the paper's outlier

	fmt.Printf("driving %d real HTTP requests at %.0f/s through %d web servers + db...\n",
		cfg.Requests, cfg.Rate, cfg.WebServers)
	start := time.Now()
	es, names, st, err := livedemo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d events in %.1fs (timestamp repairs: %d, max adjust %.3gms)\n\n",
		len(es.Events), time.Since(start).Seconds(), st.Repairs, st.MaxAdjust*1000)

	rng := queueinf.NewRNG(5)
	working := es.Clone()
	working.ObserveTasks(rng, 0.25)
	em, post, err := queueinf.Estimate(working, rng,
		queueinf.EMOptions{Iterations: 600},
		queueinf.PosteriorOptions{Sweeps: 40})
	if err != nil {
		log.Fatal(err)
	}

	full := es.MeanServiceByQueue()
	est := em.Params.MeanServiceTimes()
	fmt.Printf("%-6s  %-8s  %-24s  %-10s\n", "queue", "requests", "mean service est/meas (ms)", "mean wait (ms)")
	for q := 1; q < es.NumQueues; q++ {
		fmt.Printf("%-6s  %-8d  %9.2f / %-9.2f     %8.2f\n",
			names[q], len(es.ByQueue[q]), est[q]*1000, full[q]*1000, post.MeanWait[q]*1000)
	}
	fmt.Printf("\nconfigured means: web %.1fms, db %.1fms — estimates from 25%% of a real\n",
		cfg.WebMean.Seconds()*1000, cfg.DBMean.Seconds()*1000)
	fmt.Println("HTTP trace land close to them (plus genuine scheduler/network overhead);")
	fmt.Printf("the starved %s, with only %d requests, is the unstable outlier.\n",
		names[cfg.WebServers], len(es.ByQueue[cfg.WebServers]))
}
