// Capacity: the paper's first listed application — "predict the amount of
// load that will cause a system to become unresponsive, without actually
// allowing it to fail". A lightly loaded three-tier system is observed at
// 10%; the estimated model (rates + empirical routing) is then re-simulated
// at hypothetical load multipliers to find the saturation point.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rng := queueinf.NewRNG(77)

	// A healthy production-like system: λ=2/s into three tiers at ρ≤0.33.
	net, err := queueinf.Tiered(queueinf.Exponential(2), []queueinf.TierSpec{
		{Name: "web", Replicas: 2, Service: queueinf.Exponential(6)},
		{Name: "app", Replicas: 1, Service: queueinf.Exponential(7)},
		{Name: "db", Replicas: 1, Service: queueinf.Exponential(9)},
	})
	if err != nil {
		log.Fatal(err)
	}
	truth, err := queueinf.Simulate(net, rng, 2000)
	if err != nil {
		log.Fatal(err)
	}
	working := truth.Clone()
	working.ObserveTasks(rng, 0.10)

	em, err := queueinf.StEM(working, rng, queueinf.EMOptions{Iterations: 800})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated from 10%% of %d requests: λ̂=%.2f/s, mean services %v\n\n",
		truth.NumTasks, em.Params.Rates[0], round(em.Params.MeanServiceTimes()))

	forecasts, err := queueinf.WhatIf(working, em.Params, rng, 4000,
		1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-5s  %-9s  %-10s  %-8s  %-8s  %-6s  %s\n",
		"load", "λ(req/s)", "mean resp", "p95", "p99", "max ρ", "verdict")
	for _, f := range forecasts {
		verdict := "ok"
		if f.Saturated {
			verdict = "SATURATED — latency grows without bound"
		} else if f.MaxRho > 0.8 {
			verdict = "approaching saturation"
		}
		fmt.Printf("%4.1fx  %-9.2f  %-10.3f  %-8.3f  %-8.3f  %-6.2f  %s\n",
			f.LambdaScale, f.Lambda, f.MeanResponse, f.P95, f.P99, f.MaxRho, verdict)
	}
	fmt.Println("\nthe knee appears where the bottleneck tier's offered load ρ crosses 1 —")
	fmt.Println("predicted entirely from 10% of a calm trace, without stressing the system.")
}

func round(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
