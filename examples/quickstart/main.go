// Quickstart: simulate a small three-tier queueing network, observe only
// 10% of the tasks, and recover the per-queue service and waiting times
// with the Gibbs/StEM machinery — the core workflow of the paper.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rng := queueinf.NewRNG(42)

	// The paper's synthetic setting: λ=10, all µ=5, tiers of 1/2/4
	// replicas, so the single-replica tier is overloaded (ρ=2), the
	// two-replica tier critically loaded (ρ=1), and the four-replica tier
	// moderately loaded (ρ=0.5).
	net, err := queueinf.ThreeTier(10, 5, [3]int{1, 2, 4})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: a full trace of 1000 tasks.
	truth, err := queueinf.Simulate(net, rng, 1000)
	if err != nil {
		log.Fatal(err)
	}

	// Keep complete arrival records for only 10% of tasks; for the rest,
	// only the per-queue arrival order is known.
	working := truth.Clone()
	observed := working.ObserveTasks(rng, 0.10)
	fmt.Printf("observed %d of %d tasks (%d of %d arrival events)\n\n",
		len(observed), working.NumTasks, working.NumObservedArrivals(), len(working.Events)-working.NumTasks)

	// Estimate rates with stochastic EM, then waiting times with the
	// posterior pass.
	em, post, err := queueinf.Estimate(working, rng,
		queueinf.EMOptions{Iterations: 1000},
		queueinf.PosteriorOptions{Sweeps: 80})
	if err != nil {
		log.Fatal(err)
	}

	trueService := truth.MeanServiceByQueue()
	trueWait := truth.MeanWaitByQueue()
	estService := em.Params.MeanServiceTimes()
	names := net.QueueNames()

	fmt.Printf("estimated arrival rate λ = %.3f (true 10)\n\n", em.Params.Rates[0])
	fmt.Printf("%-6s  %-22s  %-22s\n", "queue", "mean service (est/true)", "mean wait (est/true)")
	for q := 1; q < working.NumQueues; q++ {
		fmt.Printf("%-6s  %8.4f / %-8.4f    %8.3f / %-8.3f\n",
			names[q], estService[q], trueService[q], post.MeanWait[q], trueWait[q])
	}

	diag, err := queueinf.Diagnose(post, names)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocalization: %s carries the worst queueing delay\n", diag.Bottleneck().Name)
}
