// Webapp: the paper's §5.2 experiment in miniature. Simulates the
// three-tier movie-voting deployment (haproxy-measured network queue, ten
// web-server processes with one starved by the load balancer, a shared
// database) under linearly ramped load, then estimates every queue's mean
// service and waiting time from 10% of the requests.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rng := queueinf.NewRNG(2008)

	cfg := queueinf.DefaultWebAppConfig()
	cfg.Requests = 2000 // scaled down from the paper's 5759 to run in seconds
	cfg.Duration = 2500

	truth, net, err := queueinf.WebApp(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d requests → %d events across %d queues\n",
		truth.NumTasks, len(truth.Events), truth.NumQueues)

	working := truth.Clone()
	working.ObserveTasks(rng, 0.10)

	em, post, err := queueinf.Estimate(working, rng,
		queueinf.EMOptions{Iterations: 800},
		queueinf.PosteriorOptions{Sweeps: 60})
	if err != nil {
		log.Fatal(err)
	}

	names := net.QueueNames()
	trueService := truth.MeanServiceByQueue()
	estService := em.Params.MeanServiceTimes()
	fmt.Printf("\n%-8s  %-8s  %-22s  %-10s\n", "queue", "requests", "mean service est/true", "mean wait")
	for q := 1; q < truth.NumQueues; q++ {
		fmt.Printf("%-8s  %-8d  %9.4f / %-9.4f  %.4f\n",
			names[q], len(truth.ByQueue[q]), estService[q], trueService[q], post.MeanWait[q])
	}

	starved := cfg.StarvedServer
	fmt.Printf("\nweb%d was starved by the load balancer (cf. the paper's 19-request outlier);\n", starved)
	fmt.Println("with so little data its estimate is expected to be unstable — exactly the")
	fmt.Println("behaviour Figure 5 shows for the corresponding real server.")
}
