// Bottleneck: the paper's motivating diagnosis question — "five minutes
// ago, a brief spike in workload occurred; which parts of the system were
// the bottleneck during that spike?" — answered retrospectively from 5% of
// the trace data.
//
// Two runs of the same three-tier system are compared:
//
//   - "load spike": the workload briefly triples, so the tier-2 queue
//     backs up — latency is load-induced (waiting time inflates, service
//     time does not);
//   - "slow database": the workload stays calm but the database's
//     intrinsic service time triples — latency is service-induced.
//
// The inferred (service, waiting) decomposition distinguishes the two
// cases, which raw end-to-end latency cannot.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func run(label string, net *queueinf.Network, entries []float64, rng *queueinf.RNG) *queueinf.Diagnosis {
	truth, err := queueinf.SimulateEntries(net, rng, entries)
	if err != nil {
		log.Fatal(err)
	}
	working := truth.Clone()
	working.ObserveTasks(rng, 0.05)
	_, post, err := queueinf.Estimate(working, rng,
		queueinf.EMOptions{Iterations: 1200},
		queueinf.PosteriorOptions{Sweeps: 60})
	if err != nil {
		log.Fatal(err)
	}
	diag, err := queueinf.Diagnose(post, net.QueueNames())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s (5%% of tasks observed) ---\n", label)
	if err := diag.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	b := diag.Bottleneck()
	kind := "intrinsic service cost"
	if b.LoadFraction > 0.5 {
		kind = "load-induced queueing"
	}
	fmt.Printf("=> %s is the bottleneck; dominant cause: %s\n\n", b.Name, kind)
	return diag
}

func main() {
	const tasks = 800

	// Scenario 1: a workload spike against a healthy system.
	rng := queueinf.NewRNG(7)
	healthy, err := queueinf.Tiered(queueinf.Exponential(4), []queueinf.TierSpec{
		{Name: "web", Replicas: 2, Service: queueinf.Exponential(8)},
		{Name: "app", Replicas: 1, Service: queueinf.Exponential(6)},
		{Name: "db", Replicas: 1, Service: queueinf.Exponential(12)},
	})
	if err != nil {
		log.Fatal(err)
	}
	spike := queueinf.SpikeWorkload(4, 3, 60, 30) // base 4/s, ×3 burst at t=60..90
	d1 := run("load spike at t=60..90", healthy, spike.Entries(rng, tasks), rng)

	// Scenario 2: same calm workload, but the database is intrinsically
	// three times slower (e.g. a failing disk).
	rng2 := queueinf.NewRNG(7)
	degraded, err := queueinf.Tiered(queueinf.Exponential(4), []queueinf.TierSpec{
		{Name: "web", Replicas: 2, Service: queueinf.Exponential(8)},
		{Name: "app", Replicas: 1, Service: queueinf.Exponential(6)},
		{Name: "db", Replicas: 1, Service: queueinf.Exponential(4)}, // 12 → 4
	})
	if err != nil {
		log.Fatal(err)
	}
	calm := queueinf.PoissonWorkload(4)
	d2 := run("slow database under calm load", degraded, calm.Entries(rng2, tasks), rng2)

	// The decomposition separates the two failure modes: compare each
	// queue's estimated *service* time across scenarios — only a change
	// there indicates intrinsic degradation rather than load.
	svc := func(d *queueinf.Diagnosis, name string) float64 {
		for _, q := range d.Ranked {
			if q.Name == name {
				return q.MeanService
			}
		}
		return 0
	}
	fmt.Println("cross-scenario comparison of estimated service times:")
	for _, name := range []string{"web0", "web1", "app", "db"} {
		s1, s2 := svc(d1, name), svc(d2, name)
		note := ""
		if s2 > 2*s1 {
			note = "  <- intrinsic degradation"
		}
		fmt.Printf("  %-5s %.3f -> %.3f%s\n", name, s1, s2, note)
	}
}
