#!/usr/bin/env sh
# Profile harness for the posterior hot path: runs BenchmarkPosterior with
# CPU and heap profiling and drops the artifacts plus plain-text pprof
# summaries into results/, so a perf investigation starts from files
# instead of re-deriving the incantation.
#
# Outputs (under results/):
#   posterior_cpu.pprof / posterior_heap.pprof   raw profiles
#   posterior.test                               the bench binary the
#                                                profiles refer to (pprof
#                                                needs it for symbols)
#   posterior_cpu.txt / posterior_heap.txt       `go tool pprof -top`
#                                                summaries for quick diffs
#
# Usage: sh scripts/profile.sh [benchtime] [bench-regex]
#        default 50x BenchmarkPosterior — enough iterations that the
#        steady-state sweep dominates the one-time scratch construction.
# Env:   PROFILE_DIR overrides the output directory.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-50x}"
BENCH="${2:-BenchmarkPosterior}"
DIR="${PROFILE_DIR:-results}"
mkdir -p "$DIR"

go test -bench "$BENCH" -benchtime "$BENCHTIME" -run '^$' \
    -cpuprofile "$DIR/posterior_cpu.pprof" \
    -memprofile "$DIR/posterior_heap.pprof" \
    -o "$DIR/posterior.test" .

go tool pprof -top -nodecount 25 "$DIR/posterior.test" \
    "$DIR/posterior_cpu.pprof" > "$DIR/posterior_cpu.txt"
# alloc_space surfaces transient per-sweep garbage that inuse_space hides.
go tool pprof -top -nodecount 25 -sample_index alloc_space \
    "$DIR/posterior.test" "$DIR/posterior_heap.pprof" > "$DIR/posterior_heap.txt"

echo "wrote $DIR/posterior_cpu.pprof $DIR/posterior_heap.pprof (+ -top summaries)"
sed -n '1,12p' "$DIR/posterior_cpu.txt"
