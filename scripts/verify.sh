#!/usr/bin/env sh
# Full verification gate: vet, build everything (commands and examples
# included), then run the test suite under the race detector.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
