#!/usr/bin/env sh
# Full verification gate: vet, build everything (commands and examples
# included), then run the test suite under the race detector.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Focused race gate for the concurrent paths: the chromatic parallel Gibbs
# engine (core), the serve e2e test plus the metrics scrape storm, the
# shared inference executor (priority queue, shed/re-admit scanner, anytime
# republication, incremental slides — worker pool vs ingest vs readers),
# the telemetry registry's writer-vs-scraper test, the span ring's
# concurrent writers-vs-snapshot test, the end-to-end trace chain and
# freshness/readiness endpoints, the WAL's group-commit writers, the
# crash-recovery e2e oracle, and the mean-field fast path (its
# determinism-across-GOMAXPROCS contract and the worker-visit publish
# path), with a fresh -count=1 run so schedule/sharding races can't hide
# behind the test cache.
go test -race -count=1 -run 'Parallel|Recovery|Executor|Trace|Readyz|Freshness|MeanField' \
    ./internal/core ./internal/serve ./internal/obs ./internal/wal
