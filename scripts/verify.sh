#!/usr/bin/env sh
# Full verification gate: vet, build everything (commands and examples
# included), then run the test suite under the race detector.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Focused race gate for the chromatic parallel Gibbs engine: the core
# property/determinism tests and the serve e2e test on the parallel path,
# with a fresh -count=1 run so schedule/sharding races can't hide behind
# the test cache.
go test -race -count=1 -run 'Parallel' ./internal/core ./internal/serve
