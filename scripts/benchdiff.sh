#!/usr/bin/env sh
# Benchmark regression gate: re-runs the Gibbs worker-grid and ingest
# data-plane benchmarks and compares each row against the committed
# baselines.
#
# - BENCH_gibbs.json: the sweep benchmarks (BenchmarkGibbsSweep) are the
#   inference hot-path contract, so they gate hard: >20% ns/op growth or
#   ANY allocs/op growth fails. Posterior rows are printed for context but
#   do not gate (they include clone + initializer noise and short-run
#   variance).
# - BENCH_ingest.json: the ingest fast path gates on its two
#   noise-immune contracts: the fast variant must stay >= 2x the stdlib
#   variant measured in the SAME run (cross-run wall-clock on a shared box
#   swings too much to gate on), and allocs/event on the fast rows must
#   not grow versus the baseline (allocations are deterministic).
#   Cross-run events/sec deltas are printed for context only.
# - BENCH_wal.json: the WAL append path gates on its fsync-free variant
#   (BenchmarkWALAppend/off): any allocs/record growth fails, and append
#   throughput below 0.5x the committed baseline fails (the wide band
#   absorbs shared-box I/O variance; real regressions halve throughput).
#   The batch4096 and Recovery rows are printed for context — both are
#   fsync/page-cache bound and too noisy to gate.
#
# Usage: sh scripts/benchdiff.sh [benchtime]   (default 5x; raise for a
# quieter signal, e.g. `sh scripts/benchdiff.sh 50x`)
set -eu

cd "$(dirname "$0")/.."

BASE=BENCH_gibbs.json
INGEST_BASE=BENCH_ingest.json
WAL_BASE=BENCH_wal.json
for f in "$BASE" "$INGEST_BASE" "$WAL_BASE"; do
    if [ ! -f "$f" ]; then
        echo "benchdiff: no baseline $f; run 'make bench' and commit it" >&2
        exit 1
    fi
done

FRESH=$(mktemp)
FRESH_INGEST=$(mktemp)
FRESH_WAL=$(mktemp)
trap 'rm -f "$FRESH" "$FRESH_INGEST" "$FRESH_WAL"' EXIT
BENCH_OUT="$FRESH" BENCH_INGEST_OUT="$FRESH_INGEST" BENCH_WAL_OUT="$FRESH_WAL" \
    sh scripts/bench.sh "${1:-5x}" >/dev/null

# Both sections run even when the first regresses, so one report covers the
# whole surface; the gate fails at the end if either did.
rc=0

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant") "@cpu" num(line, "gomaxprocs")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bns[k] = num($0, "ns_per_op"); bal[k] = num($0, "allocs_per_op")
    next
}
/"bench":/ {
    k = rowkey($0)
    ns = num($0, "ns_per_op"); al = num($0, "allocs_per_op")
    if (!(k in bns)) {
        printf "%-44s %38s\n", k, "new row (no baseline)"
        next
    }
    ratio = ns / bns[k]
    status = "ok"
    if (str($0, "bench") == "BenchmarkGibbsSweep") {
        if (ratio > 1.20) { status = "FAIL ns/op"; bad = 1 }
        if (al > bal[k])  { status = status " FAIL allocs"; bad = 1 }
    }
    printf "%-44s %11.0f -> %11.0f ns/op (%+6.1f%%)  allocs %g -> %g  %s\n",
        k, bns[k], ns, (ratio - 1) * 100, bal[k], al, status
}
END {
    if (bad) { print "benchdiff: sweep benchmark regression" | "cat 1>&2"; exit 1 }
}' "$BASE" "$FRESH" || rc=1

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bev[k] = num($0, "events_per_sec"); bae[k] = num($0, "allocs_per_event")
    next
}
/"bench":/ {
    k = rowkey($0)
    ev = num($0, "events_per_sec"); ae = num($0, "allocs_per_event")
    b = str($0, "bench"); v = str($0, "variant")
    fresh_ev[b "/" v] = ev
    status = "ok"
    if (!(k in bev)) {
        printf "%-44s %38s\n", k, "new row (no baseline)"
        next
    }
    gated = (v == "fast" || b == "BenchmarkIngestParallelStreams")
    # +0.05 absorbs sync.Pool eviction jitter; real leaks show up as
    # whole allocations per event. Pool churn in the parallel benchmark
    # moves with goroutine scheduling, so it gates on an absolute ceiling.
    if (gated) {
        if (b == "BenchmarkIngestParallelStreams") {
            if (ae > 1.0) { status = "FAIL allocs/event"; bad = 1 }
        } else if (ae > bae[k] + 0.05) { status = "FAIL allocs/event"; bad = 1 }
    }
    if (bev[k] > 0 && ev > 0)
        printf "%-44s %11.0f -> %11.0f events/s (%+6.1f%%)  allocs/event %.3f -> %.3f  %s\n",
            k, bev[k], ev, (ev / bev[k] - 1) * 100, bae[k], ae, status
}
END {
    # Same-run speedup contract: the fast decoder/ingest path must hold
    # >= 2x over the stdlib variant of the same benchmark.
    for (key in fresh_ev) {
        if (key !~ /\/fast$/) continue
        base = key; sub(/\/fast$/, "/stdlib", base)
        if (!(base in fresh_ev) || fresh_ev[base] <= 0) continue
        speedup = fresh_ev[key] / fresh_ev[base]
        status = "ok"
        if (speedup < 2.0) { status = "FAIL speedup < 2x"; bad = 1 }
        printf "%-44s %26.1fx fast vs stdlib  %s\n", key, speedup, status
    }
    if (bad) { print "benchdiff: ingest benchmark regression" | "cat 1>&2"; exit 1 }
}' "$INGEST_BASE" "$FRESH_INGEST" || rc=1

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bmb[k] = num($0, "mb_per_sec"); bal[k] = num($0, "allocs_per_op")
    next
}
/"bench":/ {
    k = rowkey($0)
    mb = num($0, "mb_per_sec"); al = num($0, "allocs_per_op")
    if (!(k in bmb)) {
        printf "%-44s %38s\n", k, "new row (no baseline)"
        next
    }
    status = "ok"
    if (k == "BenchmarkWALAppend/off") {
        if (al > bal[k]) { status = "FAIL allocs/record"; bad = 1 }
        if (bmb[k] > 0 && mb >= 0 && mb < 0.5 * bmb[k]) {
            status = status " FAIL throughput < 0.5x baseline"; bad = 1
        }
    }
    printf "%-44s %9.1f -> %9.1f MB/s (%+6.1f%%)  allocs %g -> %g  %s\n",
        k, bmb[k], mb, (bmb[k] > 0 ? (mb / bmb[k] - 1) * 100 : 0), bal[k], al, status
}
END {
    if (bad) { print "benchdiff: WAL benchmark regression" | "cat 1>&2"; exit 1 }
}' "$WAL_BASE" "$FRESH_WAL" || rc=1

[ "$rc" -eq 0 ] && echo "benchdiff: ok"
exit "$rc"
