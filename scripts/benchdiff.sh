#!/usr/bin/env sh
# Benchmark regression gate: re-runs the Gibbs worker-grid benchmarks and
# compares each (benchmark, variant, GOMAXPROCS) row against the committed
# BENCH_gibbs.json baseline. The sweep benchmarks (BenchmarkGibbsSweep) are
# the hot-path contract, so they gate hard: >20% ns/op growth or ANY
# allocs/op growth fails. Posterior rows are printed for context but do not
# gate (they include clone + initializer noise and short-run variance).
#
# Usage: sh scripts/benchdiff.sh [benchtime]   (default 5x; raise for a
# quieter signal, e.g. `sh scripts/benchdiff.sh 50x`)
set -eu

cd "$(dirname "$0")/.."

BASE=BENCH_gibbs.json
if [ ! -f "$BASE" ]; then
    echo "benchdiff: no baseline $BASE; run 'make bench' and commit it" >&2
    exit 1
fi

FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT
BENCH_OUT="$FRESH" sh scripts/bench.sh "${1:-5x}" >/dev/null

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant") "@cpu" num(line, "gomaxprocs")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bns[k] = num($0, "ns_per_op"); bal[k] = num($0, "allocs_per_op")
    next
}
/"bench":/ {
    k = rowkey($0)
    ns = num($0, "ns_per_op"); al = num($0, "allocs_per_op")
    if (!(k in bns)) {
        printf "%-44s %38s\n", k, "new row (no baseline)"
        next
    }
    ratio = ns / bns[k]
    status = "ok"
    if (str($0, "bench") == "BenchmarkGibbsSweep") {
        if (ratio > 1.20) { status = "FAIL ns/op"; bad = 1 }
        if (al > bal[k])  { status = status " FAIL allocs"; bad = 1 }
    }
    printf "%-44s %11.0f -> %11.0f ns/op (%+6.1f%%)  allocs %g -> %g  %s\n",
        k, bns[k], ns, (ratio - 1) * 100, bal[k], al, status
}
END {
    if (bad) { print "benchdiff: sweep benchmark regression" | "cat 1>&2"; exit 1 }
}' "$BASE" "$FRESH"

echo "benchdiff: ok"
