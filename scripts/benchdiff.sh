#!/usr/bin/env sh
# Benchmark regression gate: re-runs the Gibbs worker-grid and ingest
# data-plane benchmarks and compares each row against the committed
# baselines.
#
# - BENCH_gibbs.json: the sweep benchmarks (BenchmarkGibbsSweep) are the
#   inference hot-path contract, so they gate hard: >20% ns/op growth or
#   ANY allocs/op growth fails. Posterior rows are printed for context but
#   do not gate (they include clone + initializer noise and short-run
#   variance). The fresh run also gates the speedup-vs-workers curve: a
#   chromatic-wN sweep row measured with gomaxprocs >= N on a host with at
#   least N CPUs must not be slower than the same-GOMAXPROCS seq row
#   (1.05x tolerance) — parallelism that loses to the sequential scan on
#   hardware that could exploit it is a regression, not noise. On hosts
#   with fewer CPUs than N the curve is reported but cannot gate.
#   The traced-seq rows gate same-run against seq: with tracing attached
#   but sampling off (the default), sweep and posterior cost must stay
#   within 5% of untraced and allocs/op must not grow.
#   A baseline written by an older bench.sh (no "schema": 2 marker) cannot
#   be row-matched against the grid output; it is reseeded from the fresh
#   run instead of failing the gate.
# - BENCH_ingest.json: the ingest fast path gates on its two
#   noise-immune contracts: the fast variant must stay >= 2x the stdlib
#   variant measured in the SAME run (cross-run wall-clock on a shared box
#   swings too much to gate on), and allocs/event on the fast rows must
#   not grow versus the baseline (allocations are deterministic).
#   Cross-run events/sec deltas are printed for context only.
# - BENCH_wal.json: the WAL append path gates on its fsync-free variant
#   (BenchmarkWALAppend/off): any allocs/record growth fails, and append
#   throughput below 0.5x the committed baseline fails (the wide band
#   absorbs shared-box I/O variance; real regressions halve throughput).
#   The batch4096 and Recovery rows are printed for context — both are
#   fsync/page-cache bound and too noisy to gate.
# - BENCH_meanfield.json: the mean-field fast path gates same-run on its
#   two deterministic contracts: the ev10k solve must be >= 50x faster
#   than the serve-default cold Gibbs start (StEM + posterior) measured in
#   the SAME run, and every MeanFieldSolve row must stay at 0 allocs/op
#   (the scratch-reuse steady state is what makes the instant publish
#   free). Cross-run ns/op deltas are printed for context only — both
#   sides are CPU-bound, so the ratio is stable where wall clock is not.
# - BENCH_sched.json: the incremental-slide contract gates same-run:
#   one steady-state slide (fixed one-task delta) must cost about the
#   same at window 8000 as at window 500 — ns/op(w8000) > 3x ns/op(w500)
#   fails, because it means the slide cost tracks the window length, not
#   the new-event count. Slide allocs/op must also stay 0 (the zero-alloc
#   steady state is what makes O(new events) real). BenchmarkManyStreams
#   is printed for context — a full 64-stream scheduler round mixes
#   goroutine scheduling with inference and is too noisy to gate
#   cross-run on a shared box.
#
# Usage: sh scripts/benchdiff.sh [benchtime]   (default 5x; raise for a
# quieter signal, e.g. `sh scripts/benchdiff.sh 50x`)
set -eu

cd "$(dirname "$0")/.."

BASE=BENCH_gibbs.json
INGEST_BASE=BENCH_ingest.json
WAL_BASE=BENCH_wal.json
SCHED_BASE=BENCH_sched.json
MF_BASE=BENCH_meanfield.json
for f in "$BASE" "$INGEST_BASE" "$WAL_BASE" "$SCHED_BASE" "$MF_BASE"; do
    if [ ! -f "$f" ]; then
        echo "benchdiff: no baseline $f; run 'make bench' and commit it" >&2
        exit 1
    fi
done

FRESH=$(mktemp)
FRESH_INGEST=$(mktemp)
FRESH_WAL=$(mktemp)
FRESH_SCHED=$(mktemp)
FRESH_MF=$(mktemp)
trap 'rm -f "$FRESH" "$FRESH_INGEST" "$FRESH_WAL" "$FRESH_SCHED" "$FRESH_MF"' EXIT
BENCH_OUT="$FRESH" BENCH_INGEST_OUT="$FRESH_INGEST" BENCH_WAL_OUT="$FRESH_WAL" \
    BENCH_SCHED_OUT="$FRESH_SCHED" BENCH_MF_OUT="$FRESH_MF" \
    sh scripts/bench.sh "${1:-5x}" >/dev/null

# Both sections run even when the first regresses, so one report covers the
# whole surface; the gate fails at the end if either did.
rc=0

# An old-schema baseline (pre-grid: no "schema": 2 marker, rows without
# workers/host_cpus) cannot be row-matched against the grid output. Reseed
# it from this run instead of failing; the cross-run diff resumes once the
# reseeded file is committed. The same-run speedup gate below runs either
# way — it needs no baseline.
if grep -q '"schema": *2' "$BASE"; then
    GIBBS_CMP="$BASE"
else
    echo "benchdiff: $BASE schema changed, seeding baseline from this run (commit it)"
    cp "$FRESH" "$BASE"
    GIBBS_CMP="$FRESH"
fi

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant") "@cpu" num(line, "gomaxprocs")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bns[k] = num($0, "ns_per_op"); bal[k] = num($0, "allocs_per_op")
    next
}
/"bench":/ {
    k = rowkey($0)
    ns = num($0, "ns_per_op"); al = num($0, "allocs_per_op")
    fb[k] = str($0, "bench"); fv[k] = str($0, "variant"); fw[k] = num($0, "workers")
    fp[k] = num($0, "gomaxprocs"); fh[k] = num($0, "host_cpus")
    fns[k] = ns; fal[k] = al
    if (!(k in bns)) {
        printf "%-44s %38s\n", k, "new row (no baseline)"
        next
    }
    ratio = ns / bns[k]
    status = "ok"
    if (fb[k] == "BenchmarkGibbsSweep") {
        if (ratio > 1.20) { status = "FAIL ns/op"; bad = 1 }
        if (al > bal[k])  { status = status " FAIL allocs"; bad = 1 }
    }
    printf "%-44s %11.0f -> %11.0f ns/op (%+6.1f%%)  allocs %g -> %g  %s\n",
        k, bns[k], ns, (ratio - 1) * 100, bal[k], al, status
}
END {
    # Same-run speedup-vs-workers curve: every chromatic sweep row against
    # the seq row at the same GOMAXPROCS. Gates only where the hardware
    # could show a speedup: workers >= 2, gomaxprocs >= workers, and
    # host_cpus >= workers; elsewhere the curve is context.
    for (k in fns) {
        if (fb[k] != "BenchmarkGibbsSweep" || fw[k] < 1) continue
        seqk = "BenchmarkGibbsSweep/seq@cpu" fp[k]
        if (!(seqk in fns) || fns[seqk] <= 0 || fns[k] <= 0) continue
        status = "ok"
        if (fw[k] >= 2 && fp[k] >= fw[k] && fh[k] >= fw[k] && fns[k] > 1.05 * fns[seqk]) {
            status = "FAIL slower than seq"; bad = 1
        } else if (fw[k] > fh[k] || fw[k] > fp[k]) {
            status = "context (host too small to gate)"
        }
        printf "%-44s %22.2fx vs seq @cpu%d  %s\n", k, fns[seqk] / fns[k], fp[k], status
    }
    # Same-run tracing-overhead gate: the traced-seq rows run the
    # sequential engine with a SweepTracer attached and sampling off (the
    # default qserved configuration), so they must stay within 5% of the
    # untraced seq row at the same GOMAXPROCS and must not allocate more —
    # the span hook is one nil-parent branch, not a cost.
    for (k in fns) {
        if (fv[k] != "traced-seq") continue
        seqk = fb[k] "/seq@cpu" fp[k]
        if (!(seqk in fns) || fns[seqk] <= 0 || fns[k] <= 0) continue
        status = "ok"
        if (fns[k] > 1.05 * fns[seqk]) { status = "FAIL traced overhead > 5%"; bad = 1 }
        if (fal[k] > fal[seqk]) { status = status " FAIL traced allocs"; bad = 1 }
        printf "%-44s %19.3fx vs seq @cpu%d  allocs %g vs %g  %s\n",
            k, fns[k] / fns[seqk], fp[k], fal[k], fal[seqk], status
    }
    if (bad) { print "benchdiff: sweep benchmark regression" | "cat 1>&2"; exit 1 }
}' "$GIBBS_CMP" "$FRESH" || rc=1

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bev[k] = num($0, "events_per_sec"); bae[k] = num($0, "allocs_per_event")
    next
}
/"bench":/ {
    k = rowkey($0)
    ev = num($0, "events_per_sec"); ae = num($0, "allocs_per_event")
    b = str($0, "bench"); v = str($0, "variant")
    fresh_ev[b "/" v] = ev
    status = "ok"
    if (!(k in bev)) {
        printf "%-44s %38s\n", k, "new row (no baseline)"
        next
    }
    gated = (v == "fast" || b == "BenchmarkIngestParallelStreams")
    # +0.05 absorbs sync.Pool eviction jitter; real leaks show up as
    # whole allocations per event. Pool churn in the parallel benchmark
    # moves with goroutine scheduling, so it gates on an absolute ceiling.
    if (gated) {
        if (b == "BenchmarkIngestParallelStreams") {
            if (ae > 1.0) { status = "FAIL allocs/event"; bad = 1 }
        } else if (ae > bae[k] + 0.05) { status = "FAIL allocs/event"; bad = 1 }
    }
    if (bev[k] > 0 && ev > 0)
        printf "%-44s %11.0f -> %11.0f events/s (%+6.1f%%)  allocs/event %.3f -> %.3f  %s\n",
            k, bev[k], ev, (ev / bev[k] - 1) * 100, bae[k], ae, status
}
END {
    # Same-run speedup contract: the fast decoder/ingest path must hold
    # >= 2x over the stdlib variant of the same benchmark.
    for (key in fresh_ev) {
        if (key !~ /\/fast$/) continue
        base = key; sub(/\/fast$/, "/stdlib", base)
        if (!(base in fresh_ev) || fresh_ev[base] <= 0) continue
        speedup = fresh_ev[key] / fresh_ev[base]
        status = "ok"
        if (speedup < 2.0) { status = "FAIL speedup < 2x"; bad = 1 }
        printf "%-44s %26.1fx fast vs stdlib  %s\n", key, speedup, status
    }
    if (bad) { print "benchdiff: ingest benchmark regression" | "cat 1>&2"; exit 1 }
}' "$INGEST_BASE" "$FRESH_INGEST" || rc=1

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bmb[k] = num($0, "mb_per_sec"); bal[k] = num($0, "allocs_per_op")
    next
}
/"bench":/ {
    k = rowkey($0)
    mb = num($0, "mb_per_sec"); al = num($0, "allocs_per_op")
    if (!(k in bmb)) {
        printf "%-44s %38s\n", k, "new row (no baseline)"
        next
    }
    status = "ok"
    if (k == "BenchmarkWALAppend/off") {
        if (al > bal[k]) { status = "FAIL allocs/record"; bad = 1 }
        if (bmb[k] > 0 && mb >= 0 && mb < 0.5 * bmb[k]) {
            status = status " FAIL throughput < 0.5x baseline"; bad = 1
        }
    }
    printf "%-44s %9.1f -> %9.1f MB/s (%+6.1f%%)  allocs %g -> %g  %s\n",
        k, bmb[k], mb, (bmb[k] > 0 ? (mb / bmb[k] - 1) * 100 : 0), bal[k], al, status
}
END {
    if (bad) { print "benchdiff: WAL benchmark regression" | "cat 1>&2"; exit 1 }
}' "$WAL_BASE" "$FRESH_WAL" || rc=1

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bns[k] = num($0, "ns_per_op")
    next
}
/"bench":/ {
    k = rowkey($0)
    ns = num($0, "ns_per_op"); al = num($0, "allocs_per_op")
    status = "ok"
    if (str($0, "bench") == "BenchmarkIncrementalSlide") {
        slide[str($0, "variant")] = ns
        # The steady-state slide recycles every buffer; any allocation per
        # op means a reuse path broke and cost will track window size.
        if (al > 0) { status = "FAIL allocs/op"; bad = 1 }
    }
    if (!(k in bns)) {
        printf "%-44s %38s  %s\n", k, "new row (no baseline)", status
        next
    }
    printf "%-44s %11.0f -> %11.0f ns/op (%+6.1f%%)  allocs %g  %s\n",
        k, bns[k], ns, (bns[k] > 0 ? (ns / bns[k] - 1) * 100 : 0), al, status
}
END {
    # Same-run O(new events) gate: a slide does fixed work (one task in,
    # one task out), so its cost must not grow with the window it slides.
    # The 3x band absorbs cache effects of the larger ring; an O(window)
    # regression shows up as 16x between w500 and w8000.
    if (slide["w500"] > 0 && slide["w8000"] > 0) {
        ratio = slide["w8000"] / slide["w500"]
        status = "ok"
        if (ratio > 3.0) { status = "FAIL slide cost grows with window"; bad = 1 }
        printf "%-44s %20.2fx w8000 vs w500  %s\n", "BenchmarkIncrementalSlide/scaling", ratio, status
    }
    if (bad) { print "benchdiff: scheduler benchmark regression" | "cat 1>&2"; exit 1 }
}' "$SCHED_BASE" "$FRESH_SCHED" || rc=1

awk '
function num(line, key,    s) {
    if (!match(line, "\"" key "\": *-?[0-9.e+]+")) return -1
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: */, "", s)
    return s + 0
}
function str(line, key,    s) {
    if (!match(line, "\"" key "\": *\"[^\"]*\"")) return ""
    s = substr(line, RSTART, RLENGTH)
    sub(/^.*: *"/, "", s); sub(/"$/, "", s)
    return s
}
function rowkey(line) {
    return str(line, "bench") "/" str(line, "variant")
}
FNR == NR && /"bench":/ {
    k = rowkey($0)
    bns[k] = num($0, "ns_per_op")
    next
}
/"bench":/ {
    k = rowkey($0)
    ns = num($0, "ns_per_op"); al = num($0, "allocs_per_op")
    fns[k] = ns
    status = "ok"
    # The solve recycles every buffer through its scratch; any allocation
    # per op means the instant publish started costing GC on the hot path.
    if (str($0, "bench") == "BenchmarkMeanFieldSolve" && al > 0) {
        status = "FAIL allocs/op"; bad = 1
    }
    if (!(k in bns)) {
        printf "%-44s %38s  %s\n", k, "new row (no baseline)", status
        next
    }
    printf "%-44s %11.0f -> %11.0f ns/op (%+6.1f%%)  allocs %g  %s\n",
        k, bns[k], ns, (bns[k] > 0 ? (ns / bns[k] - 1) * 100 : 0), al, status
}
END {
    # Same-run time-to-first-estimate contract: at 10k events the
    # deterministic solve must be >= 50x faster than the serve-default
    # cold Gibbs start it replaces. Both rows come from one go test run,
    # so shared-box wall-clock swings cancel in the ratio.
    mf = fns["BenchmarkMeanFieldSolve/ev10k"]
    cold = fns["BenchmarkColdPosterior/ev10k"]
    if (mf > 0 && cold > 0) {
        speedup = cold / mf
        status = "ok"
        if (speedup < 50.0) { status = "FAIL speedup < 50x"; bad = 1 }
        printf "%-44s %17.1fx vs cold gibbs  %s\n", "BenchmarkMeanFieldSolve/ev10k", speedup, status
    } else {
        print "benchdiff: missing ev10k mean-field rows" | "cat 1>&2"; bad = 1
    }
    if (bad) { print "benchdiff: mean-field benchmark regression" | "cat 1>&2"; exit 1 }
}' "$MF_BASE" "$FRESH_MF" || rc=1

[ "$rc" -eq 0 ] && echo "benchdiff: ok"
exit "$rc"
