#!/usr/bin/env sh
# Benchmark harness. Two sections:
#
# 1. Gibbs engine: runs the sweep and posterior benchmarks across the
#    worker grid (sequential scan, chromatic engine at 1, 2, and NumCPU
#    workers) AND a GOMAXPROCS grid sized to the host (powers of two up to
#    nproc, plus nproc itself), then writes the results as JSON to
#    BENCH_gibbs.json at the repo root (schema 2: one row per benchmark ×
#    variant × GOMAXPROCS, each row carrying the workers count parsed from
#    the variant and the host_cpus it was measured on), for the
#    speedup-vs-workers curve in README.md and the benchdiff speedup gate.
#    Running every variant at every -cpu level separates the two axes the
#    numbers conflate otherwise: worker count (how the sweep is sharded)
#    and scheduler parallelism (how many shards can actually run at once).
#
# 2. Ingest data plane: runs the BenchmarkIngest* benchmarks (zero-alloc
#    NDJSON decode in internal/trace, whole-body ingest and parallel
#    multi-stream ingest in internal/serve) and writes BENCH_ingest.json
#    with events/sec and allocs/event per row — the before/after contract
#    for the ingest fast path (the stdlib variants are the baseline).
#
# 3. Durability: runs BenchmarkWALAppend (fsync-off append throughput and
#    allocs/record, plus the group-commit batch variant) and
#    BenchmarkRecovery (Open + full 50k-record replay) in internal/wal and
#    writes BENCH_wal.json.
#
# 4. Scheduler: runs BenchmarkIncrementalSlide (internal/core; one
#    steady-state window slide — append + evict — at window sizes 500,
#    2000, and 8000, the O(new events) contract) and BenchmarkManyStreams
#    (internal/serve; 64 warm streams through the shared inference
#    executor, each iteration sealing one task per stream and waiting for
#    every estimate to catch up) and writes BENCH_sched.json. benchdiff.sh
#    gates on the slide rows scaling with the delta, not the window.
#
# 5. Mean-field fast path: runs BenchmarkMeanFieldSolve (the deterministic
#    first-estimate solve at ~1k/10k/100k events) and BenchmarkColdPosterior
#    (the serve-default StEM + posterior cold start it replaces, same
#    traces) in ONE go test run and writes BENCH_meanfield.json.
#    benchdiff.sh gates the same-run ev10k speedup at >= 50x and the solve
#    rows at 0 allocs/op.
#
# Usage: sh scripts/bench.sh [benchtime]   (default 5x)
# Env:   BENCH_OUT / BENCH_INGEST_OUT / BENCH_WAL_OUT / BENCH_SCHED_OUT /
#        BENCH_MF_OUT override the output paths (used by benchdiff.sh).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUT="${BENCH_OUT:-BENCH_gibbs.json}"
INGEST_OUT="${BENCH_INGEST_OUT:-BENCH_ingest.json}"
WAL_OUT="${BENCH_WAL_OUT:-BENCH_wal.json}"
SCHED_OUT="${BENCH_SCHED_OUT:-BENCH_sched.json}"
MF_OUT="${BENCH_MF_OUT:-BENCH_meanfield.json}"
RAW=$(mktemp)
RAW_INGEST=$(mktemp)
RAW_WAL=$(mktemp)
RAW_SCHED=$(mktemp)
RAW_MF=$(mktemp)
trap 'rm -f "$RAW" "$RAW_INGEST" "$RAW_WAL" "$RAW_SCHED" "$RAW_MF"' EXIT

# GOMAXPROCS grid: powers of two up to the host's CPU count, plus the
# count itself (so a 6-core host measures 1,2,4,6). A 1-CPU host collapses
# to "1": the parallel variants still run (sharding is exercised), but no
# speedup can exist, and benchdiff's gate conditions on host_cpus per row.
HOST_CPUS="$(nproc 2>/dev/null || echo 1)"
CPUS=1
c=2
while [ "$c" -le "$HOST_CPUS" ]; do
    CPUS="$CPUS,$c"
    c=$((c * 2))
done
case ",$CPUS," in
*,"$HOST_CPUS",*) ;;
*) CPUS="$CPUS,$HOST_CPUS" ;;
esac

go test -bench 'BenchmarkGibbsSweep|BenchmarkPosterior' -benchmem \
    -cpu "$CPUS" -benchtime "$BENCHTIME" -run '^$' . | tee "$RAW"

awk '
BEGIN { n = 0 }
/^Benchmark(GibbsSweep|Posterior)\// {
    name = $1
    procs[n] = 1
    if (match(name, /-[0-9]+$/)) {       # -N suffix is the GOMAXPROCS of the run
        procs[n] = substr(name, RSTART + 1)
        sub(/-[0-9]+$/, "", name)
    }
    split(name, parts, "/")
    bench[n] = parts[1]; variant[n] = parts[2]
    workers[n] = 0                       # seq scans with no worker pool
    if (match(variant[n], /-w[0-9]+$/))
        workers[n] = substr(variant[n], RSTART + 2)
    iters[n] = $2; nsop[n] = $3
    bop[n] = ""; aop[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bop[n] = $i
        if ($(i+1) == "allocs/op") aop[n] = $i
    }
    n++
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n  \"schema\": 2,\n  \"cpu\": \"%s\",\n  \"host_cpus\": %d,\n", cpu, hostcpus
    printf "  \"gomaxprocs_grid\": [%s],\n  \"results\": [\n", grid
    for (i = 0; i < n; i++) {
        printf "    {\"bench\": \"%s\", \"variant\": \"%s\", \"workers\": %s, \"gomaxprocs\": %s, \"host_cpus\": %d, \"iters\": %s, \"ns_per_op\": %s",
            bench[i], variant[i], workers[i], procs[i], hostcpus, iters[i], nsop[i]
        if (bop[i] != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop[i], aop[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' hostcpus="$HOST_CPUS" grid="$CPUS" "$RAW" > "$OUT"

echo "wrote $OUT"

go test -bench 'BenchmarkIngest' -benchmem -benchtime "$BENCHTIME" -run '^$' \
    ./internal/trace ./internal/serve | tee "$RAW_INGEST"

awk '
BEGIN { n = 0 }
/^BenchmarkIngest/ {
    name = $1
    procs[n] = 1
    if (match(name, /-[0-9]+$/)) {
        procs[n] = substr(name, RSTART + 1)
        sub(/-[0-9]+$/, "", name)
    }
    split(name, parts, "/")
    bench[n] = parts[1]; variant[n] = (2 in parts ? parts[2] : "")
    iters[n] = $2; nsop[n] = $3
    evop[n] = ""; evsec[n] = ""; bop[n] = ""; aop[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "events/op") evop[n] = $i
        if ($(i+1) == "events/s") evsec[n] = $i
        if ($(i+1) == "B/op") bop[n] = $i
        if ($(i+1) == "allocs/op") aop[n] = $i
    }
    n++
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n  \"cpu\": \"%s\",\n  \"host_cpus\": %d,\n  \"results\": [\n", cpu, hostcpus
    for (i = 0; i < n; i++) {
        printf "    {\"bench\": \"%s\", \"variant\": \"%s\", \"gomaxprocs\": %s, \"iters\": %s, \"ns_per_op\": %s",
            bench[i], variant[i], procs[i], iters[i], nsop[i]
        if (evop[i] != "") printf ", \"events_per_op\": %s", evop[i]
        if (evsec[i] != "") printf ", \"events_per_sec\": %s", evsec[i]
        if (bop[i] != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop[i], aop[i]
        if (evop[i] != "" && aop[i] != "" && evop[i] + 0 > 0)
            printf ", \"allocs_per_event\": %.4f", aop[i] / evop[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' hostcpus="$HOST_CPUS" "$RAW_INGEST" > "$INGEST_OUT"

echo "wrote $INGEST_OUT"

# The append rows always run a fixed 20000x: each op is sub-microsecond, so
# per-op numbers only stabilize once file setup and buffer growth amortize
# over many records — and benchdiff gates on them cross-run. Recovery scales
# with the user benchtime like everything else.
go test -bench 'BenchmarkWALAppend' -benchmem -benchtime 20000x -run '^$' \
    ./internal/wal | tee "$RAW_WAL"
go test -bench 'BenchmarkRecovery' -benchmem -benchtime "$BENCHTIME" -run '^$' \
    ./internal/wal | tee -a "$RAW_WAL"

awk '
BEGIN { n = 0 }
/^Benchmark(WALAppend|Recovery)/ {
    name = $1
    procs[n] = 1
    if (match(name, /-[0-9]+$/)) {
        procs[n] = substr(name, RSTART + 1)
        sub(/-[0-9]+$/, "", name)
    }
    split(name, parts, "/")
    bench[n] = parts[1]; variant[n] = (2 in parts ? parts[2] : "")
    iters[n] = $2; nsop[n] = $3
    mbs[n] = ""; bop[n] = ""; aop[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "MB/s") mbs[n] = $i
        if ($(i+1) == "B/op") bop[n] = $i
        if ($(i+1) == "allocs/op") aop[n] = $i
    }
    n++
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n  \"cpu\": \"%s\",\n  \"host_cpus\": %d,\n  \"results\": [\n", cpu, hostcpus
    for (i = 0; i < n; i++) {
        printf "    {\"bench\": \"%s\", \"variant\": \"%s\", \"gomaxprocs\": %s, \"iters\": %s, \"ns_per_op\": %s",
            bench[i], variant[i], procs[i], iters[i], nsop[i]
        if (mbs[i] != "") printf ", \"mb_per_sec\": %s", mbs[i]
        if (bop[i] != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop[i], aop[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' hostcpus="$HOST_CPUS" "$RAW_WAL" > "$WAL_OUT"

echo "wrote $WAL_OUT"

# One slide is sub-microsecond, so the slide rows run a fixed 20000x: the
# w500-vs-w8000 scaling gate in benchdiff.sh needs per-op numbers that have
# amortized ring compaction, and 20000 ops cycle every window size at least
# twice. The executor benchmark scales with the user benchtime — each of
# its ops is a full 64-stream ingest + catch-up round.
go test -bench 'BenchmarkIncrementalSlide' -benchmem -benchtime 20000x -run '^$' \
    ./internal/core | tee "$RAW_SCHED"
go test -bench 'BenchmarkManyStreams' -benchmem -benchtime "$BENCHTIME" -run '^$' \
    ./internal/serve | tee -a "$RAW_SCHED"

awk '
BEGIN { n = 0 }
/^Benchmark(IncrementalSlide|ManyStreams)/ {
    name = $1
    procs[n] = 1
    if (match(name, /-[0-9]+$/)) {
        procs[n] = substr(name, RSTART + 1)
        sub(/-[0-9]+$/, "", name)
    }
    split(name, parts, "/")
    bench[n] = parts[1]; variant[n] = (2 in parts ? parts[2] : "")
    windowsz[n] = 0                      # wN window-size suffix of the slide rows
    if (match(variant[n], /^w[0-9]+$/))
        windowsz[n] = substr(variant[n], 2)
    iters[n] = $2; nsop[n] = $3
    bop[n] = ""; aop[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bop[n] = $i
        if ($(i+1) == "allocs/op") aop[n] = $i
    }
    n++
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n  \"cpu\": \"%s\",\n  \"host_cpus\": %d,\n  \"results\": [\n", cpu, hostcpus
    for (i = 0; i < n; i++) {
        printf "    {\"bench\": \"%s\", \"variant\": \"%s\", \"window\": %s, \"gomaxprocs\": %s, \"iters\": %s, \"ns_per_op\": %s",
            bench[i], variant[i], windowsz[i], procs[i], iters[i], nsop[i]
        if (bop[i] != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop[i], aop[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' hostcpus="$HOST_CPUS" "$RAW_SCHED" > "$SCHED_OUT"

echo "wrote $SCHED_OUT"

# Both sides of the >= 50x gate run in ONE invocation at a fixed 3x so the
# ratio is same-run (cross-run wall clock on a shared box swings too much)
# and the ev100k cold row (~2s/op) stays bounded.
go test -bench 'BenchmarkMeanFieldSolve|BenchmarkColdPosterior' -benchmem \
    -benchtime 3x -run '^$' . | tee "$RAW_MF"

awk '
BEGIN { n = 0 }
/^Benchmark(MeanFieldSolve|ColdPosterior)\// {
    name = $1
    procs[n] = 1
    if (match(name, /-[0-9]+$/)) {
        procs[n] = substr(name, RSTART + 1)
        sub(/-[0-9]+$/, "", name)
    }
    split(name, parts, "/")
    bench[n] = parts[1]; variant[n] = parts[2]
    events[n] = 0                        # evNk event-scale suffix
    if (match(variant[n], /^ev[0-9]+k$/))
        events[n] = substr(variant[n], 3, RLENGTH - 3) * 1000
    iters[n] = $2; nsop[n] = $3
    bop[n] = ""; aop[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bop[n] = $i
        if ($(i+1) == "allocs/op") aop[n] = $i
    }
    n++
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n  \"cpu\": \"%s\",\n  \"host_cpus\": %d,\n  \"results\": [\n", cpu, hostcpus
    for (i = 0; i < n; i++) {
        printf "    {\"bench\": \"%s\", \"variant\": \"%s\", \"events\": %s, \"gomaxprocs\": %s, \"iters\": %s, \"ns_per_op\": %s",
            bench[i], variant[i], events[i], procs[i], iters[i], nsop[i]
        if (bop[i] != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop[i], aop[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' hostcpus="$HOST_CPUS" "$RAW_MF" > "$MF_OUT"

echo "wrote $MF_OUT"
