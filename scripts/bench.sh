#!/usr/bin/env sh
# Gibbs-engine benchmark harness: runs the sweep and posterior benchmarks
# across the worker grid (sequential scan, chromatic engine at 1, 2, and
# NumCPU workers) and writes the results as JSON to BENCH_gibbs.json at the
# repo root, for the speedup table in README.md.
#
# Usage: sh scripts/bench.sh [benchtime]   (default 5x)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUT=BENCH_gibbs.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -bench 'BenchmarkGibbsSweep|BenchmarkPosterior' -benchmem \
    -benchtime "$BENCHTIME" -run '^$' . | tee "$RAW"

awk '
BEGIN { n = 0 }
/^Benchmark(GibbsSweep|Posterior)\// {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip GOMAXPROCS suffix
    split(name, parts, "/")
    bench[n] = parts[1]; variant[n] = parts[2]
    iters[n] = $2; nsop[n] = $3
    bop[n] = ""; aop[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bop[n] = $i
        if ($(i+1) == "allocs/op") aop[n] = $i
    }
    n++
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n  \"cpu\": \"%s\",\n  \"gomaxprocs\": %d,\n  \"results\": [\n", cpu, maxprocs
    for (i = 0; i < n; i++) {
        printf "    {\"bench\": \"%s\", \"variant\": \"%s\", \"iters\": %s, \"ns_per_op\": %s",
            bench[i], variant[i], iters[i], nsop[i]
        if (bop[i] != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop[i], aop[i]
        printf "}%s\n", (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' maxprocs="$(nproc 2>/dev/null || echo 1)" "$RAW" > "$OUT"

echo "wrote $OUT"
