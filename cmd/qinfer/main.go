// Command qinfer estimates queueing-network parameters from a (partially
// observed) JSON trace: arrival rate λ, per-queue mean service times via
// stochastic EM, and per-queue mean waiting times via the posterior pass.
//
// Usage:
//
//	qinfer -in trace.json
//	qsim ... | qinfer -in -              # read the trace from stdin
//	qinfer -in trace.json -observe 0.05  # re-mask to 5% before inference
//	qinfer -in trace.json -iters 2000 -sweeps 100 -json
//	qinfer -in trace.json -manifest run.json  # emit a run manifest
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro"
	"repro/internal/obs"
)

type output struct {
	Lambda      float64   `json:"lambda"`
	MeanService []float64 `json:"mean_service"`
	MeanWait    []float64 `json:"mean_wait"`
	Observed    int       `json:"observed_arrivals"`
	Events      int       `json:"events"`
}

// config is the resolved flag set, recorded in the run manifest.
type config struct {
	In      string  `json:"in"`
	Observe float64 `json:"observe"`
	Iters   int     `json:"iters"`
	Sweeps  int     `json:"sweeps"`
	Seed    uint64  `json:"seed"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	log := slog.New(slog.NewTextHandler(stderr, nil))
	fs := flag.NewFlagSet("qinfer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input trace JSON (required; - for stdin)")
	observe := fs.Float64("observe", -1, "re-mask observations to this task fraction before inference (default: keep the file's mask)")
	iters := fs.Int("iters", 1000, "StEM iterations")
	sweeps := fs.Int("sweeps", 60, "posterior sweeps for waiting-time estimates")
	seed := fs.Uint64("seed", 1, "RNG seed")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	manifestPath := fs.String("manifest", "", "write a run-manifest JSON (config, seed, commit, timing, results) to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		log.Error("-in is required")
		return 2
	}
	manifest := obs.NewManifest("qinfer", args)
	manifest.Seed = *seed
	manifest.Config = config{In: *in, Observe: *observe, Iters: *iters, Sweeps: *sweeps, Seed: *seed}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Error("open input", "err", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	es, err := queueinf.LoadTraceJSON(r)
	if err != nil {
		log.Error("load trace", "err", err)
		return 1
	}
	rng := queueinf.NewRNG(*seed)
	if *observe >= 0 {
		es.ObserveTasks(rng, *observe)
	}
	em, post, err := queueinf.Estimate(es, rng,
		queueinf.EMOptions{Iterations: *iters},
		queueinf.PosteriorOptions{Sweeps: *sweeps})
	if err != nil {
		log.Error("estimate", "err", err)
		return 1
	}
	res := output{
		Lambda:      em.Params.Rates[0],
		MeanService: em.Params.MeanServiceTimes(),
		MeanWait:    post.MeanWait,
		Observed:    es.NumObservedArrivals(),
		Events:      len(es.Events),
	}
	if *manifestPath != "" {
		if err := manifest.Finish(res).WriteFile(*manifestPath); err != nil {
			log.Error("write manifest", "path", *manifestPath, "err", err)
			return 1
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Error("encode output", "err", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "events: %d   observed arrivals: %d   estimated λ: %.4f\n\n", res.Events, res.Observed, res.Lambda)
	fmt.Fprintf(stdout, "%-6s  %-12s  %-12s\n", "queue", "mean service", "mean wait")
	for q := 1; q < len(res.MeanService); q++ {
		fmt.Fprintf(stdout, "q%-5d  %-12.4f  %-12.4f\n", q, res.MeanService[q], res.MeanWait[q])
	}
	return 0
}
