// Command qinfer estimates queueing-network parameters from a (partially
// observed) JSON trace: arrival rate λ, per-queue mean service times via
// stochastic EM, and per-queue mean waiting times via the posterior pass.
//
// Usage:
//
//	qinfer -in trace.json
//	qinfer -in trace.json -observe 0.05   # re-mask to 5% before inference
//	qinfer -in trace.json -iters 2000 -sweeps 100 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
)

type output struct {
	Lambda      float64   `json:"lambda"`
	MeanService []float64 `json:"mean_service"`
	MeanWait    []float64 `json:"mean_wait"`
	Observed    int       `json:"observed_arrivals"`
	Events      int       `json:"events"`
}

func main() {
	in := flag.String("in", "", "input trace JSON (required; - for stdin)")
	observe := flag.Float64("observe", -1, "re-mask observations to this task fraction before inference (default: keep the file's mask)")
	iters := flag.Int("iters", 1000, "StEM iterations")
	sweeps := flag.Int("sweeps", 60, "posterior sweeps for waiting-time estimates")
	seed := flag.Uint64("seed", 1, "RNG seed")
	asJSON := flag.Bool("json", false, "emit JSON instead of a table")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "qinfer: -in is required")
		os.Exit(2)
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	es, err := queueinf.LoadTraceJSON(r)
	if err != nil {
		fatal(err)
	}
	rng := queueinf.NewRNG(*seed)
	if *observe >= 0 {
		es.ObserveTasks(rng, *observe)
	}
	em, post, err := queueinf.Estimate(es, rng,
		queueinf.EMOptions{Iterations: *iters},
		queueinf.PosteriorOptions{Sweeps: *sweeps})
	if err != nil {
		fatal(err)
	}
	res := output{
		Lambda:      em.Params.Rates[0],
		MeanService: em.Params.MeanServiceTimes(),
		MeanWait:    post.MeanWait,
		Observed:    es.NumObservedArrivals(),
		Events:      len(es.Events),
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("events: %d   observed arrivals: %d   estimated λ: %.4f\n\n", res.Events, res.Observed, res.Lambda)
	fmt.Printf("%-6s  %-12s  %-12s\n", "queue", "mean service", "mean wait")
	for q := 1; q < len(res.MeanService); q++ {
		fmt.Printf("q%-5d  %-12.4f  %-12.4f\n", q, res.MeanService[q], res.MeanWait[q])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qinfer: %v\n", err)
	os.Exit(1)
}
