package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro"
)

// traceJSON simulates a small M/M/1 trace and serializes it the way qsim
// does, so the CLI tests exercise the real wire format.
func traceJSON(t *testing.T) []byte {
	t.Helper()
	net, err := queueinf.MM1(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	es, err := queueinf.Simulate(net, queueinf.NewRNG(11), 120)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := queueinf.SaveTraceJSON(es, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunReadsStdin pins the documented `-in -` contract: the trace comes
// from standard input, nothing is opened from disk.
func TestRunReadsStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(
		[]string{"-in", "-", "-observe", "0.5", "-iters", "60", "-sweeps", "10", "-json"},
		bytes.NewReader(traceJSON(t)), &stdout, &stderr,
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var out struct {
		Lambda      float64   `json:"lambda"`
		MeanService []float64 `json:"mean_service"`
		Events      int       `json:"events"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, stdout.String())
	}
	if out.Lambda <= 0 || out.Events == 0 || len(out.MeanService) != 2 {
		t.Errorf("implausible estimate: %+v", out)
	}
}

func TestRunTableOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(
		[]string{"-in", "-", "-iters", "60", "-sweeps", "10"},
		bytes.NewReader(traceJSON(t)), &stdout, &stderr,
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"estimated λ:", "mean service", "q1"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunWritesManifest checks the -manifest flag: the run emits a
// provenance JSON with the resolved config, seed, timing, and the same
// results the tool printed.
func TestRunWritesManifest(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := t.TempDir() + "/run.json"
	code := run(
		[]string{"-in", "-", "-iters", "60", "-sweeps", "10", "-seed", "9", "-json", "-manifest", path},
		bytes.NewReader(traceJSON(t)), &stdout, &stderr,
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool      string         `json:"tool"`
		Seed      uint64         `json:"seed"`
		Config    map[string]any `json:"config"`
		ElapsedMS float64        `json:"elapsed_ms"`
		Results   struct {
			Lambda float64 `json:"lambda"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest not JSON: %v\n%s", err, raw)
	}
	if m.Tool != "qinfer" || m.Seed != 9 || m.ElapsedMS <= 0 {
		t.Errorf("manifest header: %+v", m)
	}
	if m.Config["iters"] != float64(60) {
		t.Errorf("manifest config iters = %v, want 60", m.Config["iters"])
	}
	if m.Results.Lambda <= 0 {
		t.Errorf("manifest results lambda = %v", m.Results.Lambda)
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("missing -in: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-in is required") {
		t.Errorf("stderr: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-in", "-"}, strings.NewReader("not json"), &stdout, &stderr); code != 1 {
		t.Errorf("bad stdin: exit %d, want 1", code)
	}
	if code := run([]string{"-in", "/nonexistent/trace.json"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
