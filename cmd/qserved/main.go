// Command qserved is the online inference daemon: it ingests observed
// arrival/departure events as NDJSON over HTTP, maintains a bounded
// sliding window of recent tasks per stream, and continuously serves
// rolling queueing estimates (λ̂, per-queue µ̂ and mean wait, windowed
// bottleneck stats) computed with warm-started stochastic EM.
//
// Usage:
//
//	qserved -addr :8645
//	qserved -addr :8645 -window 1000 -interval 500ms -em-iters 500
//
// Then, from a client (see cmd/qload for a trace replayer):
//
//	curl -X PUT localhost:8645/v1/streams/web -d '{"num_queues":4}'
//	cat events.ndjson | curl -X POST --data-binary @- localhost:8645/v1/streams/web/events
//	curl localhost:8645/v1/streams/web/estimate
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// inference before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8645", "listen address")
	window := flag.Int("window", 500, "default sliding window size (sealed tasks per stream)")
	minTasks := flag.Int("min-tasks", 40, "default minimum sealed tasks before estimating")
	interval := flag.Duration("interval", 250*time.Millisecond, "default estimation cadence")
	emIters := flag.Int("em-iters", 300, "default StEM iterations per window")
	postSweeps := flag.Int("post-sweeps", 40, "default posterior sweeps per window")
	windows := flag.Int("windows", 6, "default windowed-stats buckets")
	windowSweeps := flag.Int("window-sweeps", 30, "default windowed-stats sweeps")
	workers := flag.Int("workers", 0, "default Gibbs sweep workers per stream (0 sequential, -1 one per CPU)")
	seed := flag.Uint64("seed", 1, "default stream RNG seed")
	quiet := flag.Bool("quiet", false, "suppress per-estimate logging")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the same listener")
	flag.Parse()

	srv := serve.New(serve.StreamConfig{
		WindowTasks:  *window,
		MinTasks:     *minTasks,
		IntervalMS:   int(interval.Milliseconds()),
		EMIters:      *emIters,
		PostSweeps:   *postSweeps,
		Windows:      *windows,
		WindowSweeps: *windowSweeps,
		Workers:      *workers,
		Seed:         *seed,
	})
	if !*quiet {
		srv.SetLogf(log.Printf)
	}

	handler := srv.Handler()
	if *pprofOn {
		// Profiling rides on the API listener: CPU/heap/mutex profiles of
		// the live daemon under real ingest load (see DESIGN.md §11 for the
		// workflow). Off by default — don't expose pprof on untrusted
		// networks.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("qserved: pprof enabled at /debug/pprof/")
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("qserved: signal received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("qserved: shutdown: %v", err)
		}
	}()

	log.Printf("qserved: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("qserved: %v", err)
	}
	// The listener is closed; drain the stream workers (an in-flight
	// estimation pass finishes, then every worker exits).
	srv.Close()
	log.Printf("qserved: drained, bye")
}
