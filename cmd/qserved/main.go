// Command qserved is the online inference daemon: it ingests observed
// arrival/departure events as NDJSON over HTTP, maintains a bounded
// sliding window of recent tasks per stream, and continuously serves
// rolling queueing estimates (λ̂, per-queue µ̂ and mean wait, windowed
// bottleneck stats) computed with warm-started stochastic EM.
//
// Usage:
//
//	qserved -addr :8645
//	qserved -addr :8645 -window 1000 -interval 500ms -em-iters 500
//
// Then, from a client (see cmd/qload for a trace replayer):
//
//	curl -X PUT localhost:8645/v1/streams/web -d '{"num_queues":4}'
//	cat events.ndjson | curl -X POST --data-binary @- localhost:8645/v1/streams/web/events
//	curl localhost:8645/v1/streams/web/estimate
//	curl localhost:8645/metrics           # Prometheus exposition
//
// Inference runs on a shared executor: a fixed pool of -inference-workers
// goroutines drains a priority queue over streams ordered by estimate
// staleness x seal rate, spending at most -visit-budget per visit and
// publishing anytime snapshots as epochs progress (see DESIGN.md §16).
// The daemon's inference goroutine count is the pool size, independent of
// how many streams exist.
//
// With -wal-dir set the daemon is durable: every accepted event batch is
// appended to a per-shard write-ahead log before it is applied, stream
// state is snapshotted on -snapshot-interval, and a restart with the same
// directory replays the log to bit-identical windows and estimates. The
// -wal-sync policy trades fsync latency for the durability window (see
// DESIGN.md §14). GET /readyz answers 503 while recovery replays (and
// while draining), so restarts can be orchestrated without serving stale
// errors.
//
// With -trace-sample N > 0 every Nth ingest request is traced end to end
// — batch decode, WAL append/fsync, executor queue wait, window
// slide/rebuild, per-sweep, publish — into a fixed -trace-ring span
// buffer served as JSONL from GET /debug/trace; GET /debug/sched exposes
// the executor's live priority view. -freshness-slo-ms sets the
// seal→publish objective behind qserved_freshness_slo_breach_total and
// the per-stream attainment gauge (see DESIGN.md §17).
//
// Logs are structured (log/slog); -log-format selects text or json and
// -log-level the threshold. The daemon shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight inference before logging a final
// counter summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

func newLogger(format, level string, quiet bool) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	if quiet && lvl < slog.LevelWarn {
		lvl = slog.LevelWarn
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	addr := flag.String("addr", ":8645", "listen address")
	window := flag.Int("window", 500, "default sliding window size (sealed tasks per stream)")
	minTasks := flag.Int("min-tasks", 40, "default minimum sealed tasks before estimating")
	interval := flag.Duration("interval", 250*time.Millisecond, "legacy estimation cadence (kept for config compatibility; scheduling is demand-driven)")
	emIters := flag.Int("em-iters", 300, "default StEM iterations per window")
	postSweeps := flag.Int("post-sweeps", 40, "default posterior sweeps per window")
	windows := flag.Int("windows", 6, "default windowed-stats buckets")
	windowSweeps := flag.Int("window-sweeps", 30, "default windowed-stats sweeps")
	workers := flag.Int("workers", 0, "default Gibbs sweep workers per stream (0 incremental sequential, -1 one per CPU)")
	infWorkers := flag.Int("inference-workers", -1, "shared inference executor pool size (-1 = one per CPU)")
	queueDepth := flag.Int("queue-depth", 0, "inference queue bound; excess streams are shed and re-admitted (0 = max(64, 4x pool))")
	visitBudget := flag.Duration("visit-budget", 50*time.Millisecond, "wall-clock budget of one inference visit")
	sweepBatch := flag.Int("sweep-batch", 0, "default per-visit sweep cap per stream (0 = deadline-bounded only)")
	seed := flag.Uint64("seed", 1, "default stream RNG seed")
	maxLine := flag.Int("max-line", 1<<20, "max NDJSON line length in bytes (longer lines get HTTP 413)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory for durable streams (empty = in-memory only)")
	walSync := flag.String("wal-sync", "batch", "WAL fsync policy: batch (fsync per request), off, or an interval like 50ms")
	snapInterval := flag.Duration("snapshot-interval", 30*time.Second, "how often durable stream state is snapshotted and the WAL compacted")
	quiet := flag.Bool("quiet", false, "suppress per-estimate logging (warn level and up only)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the same listener")
	blockRate := flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate argument (0 = off; requires -pprof)")
	mutexFrac := flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction argument (0 = off; requires -pprof)")
	traceSample := flag.Int("trace-sample", 0, "trace every Nth ingest request end to end (0 = tracing off)")
	traceRing := flag.Int("trace-ring", 4096, "span ring capacity behind GET /debug/trace (rounded up to a power of two)")
	freshSLOms := flag.Int("freshness-slo-ms", 0, "seal-to-publish freshness objective in milliseconds (0 = no SLO accounting)")
	meanField := flag.String("meanfield", serve.MeanFieldOn,
		"deterministic mean-field fast path: on (instant first estimates + StEM warm starts), init-only (warm starts only), or off")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel, *quiet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qserved: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	// Flag validation: catch nonsense at startup with a clear message
	// instead of a confusing panic or a silently idle daemon.
	if *workers < -1 {
		fmt.Fprintf(os.Stderr, "qserved: -workers must be >= -1 (-1 = one per CPU), got %d\n", *workers)
		os.Exit(2)
	}
	if *infWorkers == 0 || *infWorkers < -1 {
		fmt.Fprintf(os.Stderr, "qserved: -inference-workers must be positive (or -1 for one per CPU), got %d\n", *infWorkers)
		os.Exit(2)
	}
	if *snapInterval <= 0 {
		fmt.Fprintf(os.Stderr, "qserved: -snapshot-interval must be positive, got %v\n", *snapInterval)
		os.Exit(2)
	}
	if *sweepBatch < 0 {
		fmt.Fprintf(os.Stderr, "qserved: -sweep-batch must be >= 0, got %d\n", *sweepBatch)
		os.Exit(2)
	}
	if *traceSample < 0 {
		fmt.Fprintf(os.Stderr, "qserved: -trace-sample must be >= 0 (0 = off), got %d\n", *traceSample)
		os.Exit(2)
	}
	if *traceRing <= 0 {
		fmt.Fprintf(os.Stderr, "qserved: -trace-ring must be positive, got %d\n", *traceRing)
		os.Exit(2)
	}
	if *freshSLOms < 0 {
		fmt.Fprintf(os.Stderr, "qserved: -freshness-slo-ms must be >= 0 (0 = off), got %d\n", *freshSLOms)
		os.Exit(2)
	}
	if !serve.ValidMeanFieldMode(*meanField) {
		fmt.Fprintf(os.Stderr, "qserved: bad -meanfield %q (want on, init-only, or off)\n", *meanField)
		os.Exit(2)
	}
	if *blockRate < 0 || *mutexFrac < 0 {
		fmt.Fprintf(os.Stderr, "qserved: -block-profile-rate and -mutex-profile-fraction must be >= 0\n")
		os.Exit(2)
	}
	if (*blockRate > 0 || *mutexFrac > 0) && !*pprofOn {
		fmt.Fprintf(os.Stderr, "qserved: -block-profile-rate/-mutex-profile-fraction need -pprof (the profiles are read from /debug/pprof/)\n")
		os.Exit(2)
	}

	defaults := serve.StreamConfig{
		WindowTasks:  *window,
		MinTasks:     *minTasks,
		IntervalMS:   int(interval.Milliseconds()),
		EMIters:      *emIters,
		PostSweeps:   *postSweeps,
		Windows:      *windows,
		WindowSweeps: *windowSweeps,
		Workers:      *workers,
		SweepBatch:   *sweepBatch,
		Seed:         *seed,
	}
	serverOpts := []serve.Option{
		serve.WithInferenceWorkers(*infWorkers),
		serve.WithQueueDepth(*queueDepth),
		serve.WithVisitBudget(*visitBudget),
		serve.WithTraceRing(*traceRing),
		serve.WithTraceSampleEvery(*traceSample),
		serve.WithFreshnessSLO(time.Duration(*freshSLOms) * time.Millisecond),
		serve.WithMeanField(*meanField),
	}
	var srv *serve.Server
	if *walDir != "" {
		wcfg := serve.WALConfig{Dir: *walDir, SnapshotInterval: *snapInterval}
		switch *walSync {
		case "batch":
			wcfg.Sync = wal.SyncBatch
		case "off":
			wcfg.Sync = wal.SyncOff
		default:
			iv, err := time.ParseDuration(*walSync)
			if err != nil || iv <= 0 {
				fmt.Fprintf(os.Stderr, "qserved: bad -wal-sync %q (want batch, off, or a positive duration)\n", *walSync)
				os.Exit(2)
			}
			wcfg.Sync = wal.SyncInterval
			wcfg.SyncInterval = iv
		}
		start := time.Now()
		var err error
		if srv, err = serve.NewDurable(defaults, wcfg, serverOpts...); err != nil {
			logger.Error("wal recovery failed", "dir", *walDir, "err", err)
			os.Exit(1)
		}
		logger.Info("wal recovered", "dir", *walDir, "sync", *walSync,
			"elapsed", time.Since(start).Round(time.Millisecond))
	} else {
		srv = serve.New(defaults, serverOpts...)
	}
	srv.SetLogger(logger)
	srv.SetMaxLineBytes(*maxLine)

	handler := srv.Handler()
	if *pprofOn {
		// Profiling rides on the API listener: CPU/heap/mutex profiles of
		// the live daemon under real ingest load (see DESIGN.md §11 for the
		// workflow). Off by default — don't expose pprof on untrusted
		// networks.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		// Contention profiling is opt-in even under -pprof: both samplers
		// cost on every blocking event, so they are only armed when asked.
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		logger.Info("pprof enabled", "path", "/debug/pprof/",
			"block_rate", *blockRate, "mutex_fraction", *mutexFrac)
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("signal received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
	}()

	logger.Info("listening", "addr", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen", "err", err)
		os.Exit(1)
	}
	// The listener is closed; drain the shared executor (in-flight visits
	// finish their budget slice, then the pool exits) and log the final
	// counter summary.
	srv.Close()
	t := srv.Totals()
	logger.Info("drained",
		"uptime", t.Uptime.Round(time.Millisecond),
		"streams", t.Streams,
		"events_ingested", t.EventsIngested,
		"events_rejected", t.EventsRejected,
		"tasks_sealed", t.TasksSealed,
		"estimates", t.Estimates,
		"estimate_errors", t.EstimateErrors,
		"sweeps", t.Sweeps)
}
