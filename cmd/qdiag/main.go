// Command qdiag localizes performance problems from a partially observed
// trace — the paper's headline application. It estimates per-queue service
// and waiting times and reports, for each queue, whether its latency is
// load-induced (queueing) or intrinsic (service), ranked worst-first.
//
// Usage:
//
//	qdiag -in trace.json
//	qdiag -in trace.json -observe 0.05 -names q0,net,web,db
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	in := flag.String("in", "", "input trace JSON (required; - for stdin)")
	observe := flag.Float64("observe", -1, "re-mask observations to this task fraction before inference")
	iters := flag.Int("iters", 1000, "StEM iterations")
	sweeps := flag.Int("sweeps", 60, "posterior sweeps")
	seed := flag.Uint64("seed", 1, "RNG seed")
	names := flag.String("names", "", "optional comma-separated queue names (including q0)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "qdiag: -in is required")
		os.Exit(2)
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	es, err := queueinf.LoadTraceJSON(r)
	if err != nil {
		fatal(err)
	}
	rng := queueinf.NewRNG(*seed)
	if *observe >= 0 {
		es.ObserveTasks(rng, *observe)
	}
	_, post, err := queueinf.Estimate(es, rng,
		queueinf.EMOptions{Iterations: *iters},
		queueinf.PosteriorOptions{Sweeps: *sweeps})
	if err != nil {
		fatal(err)
	}
	queueNames := make([]string, es.NumQueues)
	for q := range queueNames {
		queueNames[q] = fmt.Sprintf("q%d", q)
	}
	if *names != "" {
		parts := strings.Split(*names, ",")
		if len(parts) != es.NumQueues {
			fatal(fmt.Errorf("-names has %d entries for %d queues", len(parts), es.NumQueues))
		}
		for q, p := range parts {
			queueNames[q] = strings.TrimSpace(p)
		}
	}
	diag, err := queueinf.Diagnose(post, queueNames)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bottleneck localization (%d events, %d observed arrivals):\n\n",
		len(es.Events), es.NumObservedArrivals())
	if err := diag.Render(os.Stdout); err != nil {
		fatal(err)
	}
	b := diag.Bottleneck()
	kind := "intrinsically slow — its service time dominates"
	if b.LoadFraction > 0.5 {
		kind = "overloaded — most of its latency is queueing delay"
	}
	fmt.Printf("\nverdict: %s is the bottleneck and appears %s.\n", b.Name, kind)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qdiag: %v\n", err)
	os.Exit(1)
}
