// Command qsim simulates a queueing network and writes the resulting trace
// as JSON, optionally masking observations at the task level. The output is
// the interchange format consumed by qinfer and qdiag.
//
// Usage:
//
//	qsim -tiers 1,2,4 -lambda 10 -mu 5 -tasks 1000 -observe 0.1 -out trace.json
//	qsim -webapp -out webapp.json            # the paper's §5.2 system
//	qsim -tiers 2,2 -ramp 1:5:100 ...        # linearly ramped load
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	tiers := flag.String("tiers", "1,2,4", "replica counts per tier, comma-separated")
	lambda := flag.Float64("lambda", 10, "arrival rate")
	mu := flag.Float64("mu", 5, "service rate of every queue")
	tasks := flag.Int("tasks", 1000, "number of tasks")
	observe := flag.Float64("observe", 1.0, "fraction of tasks whose arrivals are marked observed")
	seed := flag.Uint64("seed", 1, "RNG seed")
	out := flag.String("out", "-", "output file (default stdout)")
	ramp := flag.String("ramp", "", "optional ramped workload start:end:duration (overrides -lambda)")
	webappFlag := flag.Bool("webapp", false, "simulate the paper's §5.2 web application instead")
	flag.Parse()

	rng := queueinf.NewRNG(*seed)
	var (
		es  *queueinf.EventSet
		err error
	)
	if *webappFlag {
		es, _, err = queueinf.WebApp(queueinf.DefaultWebAppConfig(), rng)
		if err != nil {
			fatal(err)
		}
	} else {
		var replicas []int
		for _, part := range strings.Split(*tiers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad -tiers entry %q", part))
			}
			replicas = append(replicas, n)
		}
		specs := make([]queueinf.TierSpec, len(replicas))
		for i, n := range replicas {
			specs[i] = queueinf.TierSpec{
				Name:     fmt.Sprintf("tier%d", i),
				Replicas: n,
				Service:  queueinf.Exponential(*mu),
			}
		}
		net, err := queueinf.Tiered(queueinf.Exponential(*lambda), specs)
		if err != nil {
			fatal(err)
		}
		if *ramp != "" {
			parts := strings.Split(*ramp, ":")
			if len(parts) != 3 {
				fatal(fmt.Errorf("bad -ramp %q, want start:end:duration", *ramp))
			}
			var vals [3]float64
			for i, p := range parts {
				v, err := strconv.ParseFloat(p, 64)
				if err != nil {
					fatal(fmt.Errorf("bad -ramp value %q", p))
				}
				vals[i] = v
			}
			gen := queueinf.RampWorkload(vals[0], vals[1], vals[2])
			es, err = queueinf.SimulateEntries(net, rng, gen.Entries(rng, *tasks))
		} else {
			es, err = queueinf.Simulate(net, rng, *tasks)
		}
		if err != nil {
			fatal(err)
		}
	}

	if *observe < 1.0 {
		es.ObserveTasks(rng, *observe)
	} else {
		es.ObserveTaskIDs(allTasks(es.NumTasks))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := queueinf.SaveTraceJSON(es, w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "qsim: wrote %d events (%d tasks, %d queues, %d observed arrivals)\n",
		len(es.Events), es.NumTasks, es.NumQueues, es.NumObservedArrivals())
}

func allTasks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qsim: %v\n", err)
	os.Exit(1)
}
