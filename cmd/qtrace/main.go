// Command qtrace inspects a JSON trace: per-queue event counts,
// utilizations, busy periods, service/waiting summaries (ground truth as
// recorded in the file), and the observation mask. It answers "what does
// this trace look like?" before any inference is run.
//
// Usage:
//
//	qtrace -in trace.json
//	qtrace -in trace.json -windows 6    # add a windowed load breakdown
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	in := flag.String("in", "", "input trace JSON (required; - for stdin)")
	windows := flag.Int("windows", 0, "optionally print per-window waiting times")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "qtrace: -in is required")
		os.Exit(2)
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	es, err := queueinf.LoadTraceJSON(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace: %d events, %d tasks, %d queues, %d observed arrivals\n\n",
		len(es.Events), es.NumTasks, es.NumQueues, es.NumObservedArrivals())

	svc := es.MeanServiceByQueue()
	wait := es.MeanWaitByQueue()
	counts := es.CountByQueue()
	fmt.Printf("%-6s  %-7s  %-9s  %-9s  %-6s  %-12s\n",
		"queue", "events", "mean svc", "mean wait", "util", "busy periods")
	for q := 0; q < es.NumQueues; q++ {
		bp := es.BusyPeriods(q)
		fmt.Printf("q%-5d  %-7d  %-9.4f  %-9.4f  %-6.2f  %-12d\n",
			q, counts[q], svc[q], wait[q], es.Utilization(q), len(bp))
	}

	// Slowest 1% decomposition.
	k := es.NumTasks / 100
	if k > 0 {
		slow := es.SlowestTasks(k)
		shares := es.TaskTimeByQueue(slow)
		fmt.Printf("\nslowest 1%% of tasks (%d): time shares per queue:", k)
		for q := 1; q < es.NumQueues; q++ {
			fmt.Printf(" q%d=%.0f%%", q, shares[q]*100)
		}
		fmt.Println()
	}

	if *windows > 0 {
		first := es.TaskEntry(0)
		last := es.TaskExit(es.NumTasks - 1)
		ws, err := es.WindowedStats(first, last, *windows)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nwindowed mean waiting time (%d windows over [%.1f, %.1f)):\n", *windows, first, last)
		for q := 1; q < es.NumQueues; q++ {
			fmt.Printf("q%-3d", q)
			for w := 0; w < *windows; w++ {
				fmt.Printf("  %8.4f", ws[q][w].MeanWait)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qtrace: %v\n", err)
	os.Exit(1)
}
