// Command qload replays a recorded trace (cmd/qsim's JSON format) against
// a running qserved daemon, in real, accelerated, or unpaced time, then
// waits for the daemon's estimate to cover the replayed tasks and prints
// it. Together with qserved it turns any simulated scenario — the §5.2
// webapp, ramps, spikes — into an end-to-end live-serving demo:
//
//	qsim -tiers 1,2 -lambda 4 -mu 10 -tasks 1000 -observe 0.25 -out t.json
//	qserved -addr :8645 &
//	qload -addr http://localhost:8645 -in t.json -stream demo -speed 20
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/serve"
)

// log is the tool's structured logger; progress and errors go to stderr,
// results to stdout.
var log = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	addr := flag.String("addr", "http://localhost:8645", "qserved base URL")
	in := flag.String("in", "", "input trace JSON (required; - for stdin)")
	stream := flag.String("stream", "default", "target stream id")
	speed := flag.Float64("speed", 0, "time acceleration (1 = real time, 20 = 20x, 0 = unpaced)")
	batch := flag.Int("batch", 256, "max events per POST")
	observe := flag.Float64("observe", -1, "re-mask observations to this task fraction before replay")
	seed := flag.Uint64("seed", 1, "RNG seed for -observe")
	window := flag.Int("window", 0, "stream window size (0 = server default)")
	emIters := flag.Int("em-iters", 0, "stream StEM iterations (0 = server default)")
	wait := flag.Duration("wait", 60*time.Second, "how long to wait for the estimate to catch up")
	asJSON := flag.Bool("json", false, "emit the final estimate as JSON")
	flag.Parse()
	if *in == "" {
		log.Error("-in is required")
		os.Exit(2)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	es, err := queueinf.LoadTraceJSON(r)
	if err != nil {
		fatal(err)
	}
	if *observe >= 0 {
		es.ObserveTasks(queueinf.NewRNG(*seed), *observe)
	}

	ctx := context.Background()
	client := serve.NewClient(*addr)
	if err := client.Healthz(ctx); err != nil {
		fatal(fmt.Errorf("daemon not reachable at %s: %w", *addr, err))
	}
	cfg := serve.StreamConfig{NumQueues: es.NumQueues, WindowTasks: *window, EMIters: *emIters}
	if err := client.CreateStream(ctx, *stream, cfg); err != nil {
		fatal(err)
	}

	log.Info("replaying", "tasks", es.NumTasks, "queues", es.NumQueues, "stream", *stream, "speed", *speed)
	last := time.Now()
	stats, err := serve.Replay(ctx, client, es, serve.ReplayOptions{
		Stream: *stream,
		Speed:  *speed,
		Batch:  *batch,
		Progress: func(sent, total int) {
			if time.Since(last) > time.Second {
				last = time.Now()
				log.Info("progress", "sent", sent, "total", total)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	log.Info("replay done",
		"events", stats.Events, "batches", stats.Batches,
		"accepted", stats.Accepted, "rejected", stats.Rejected,
		"bytes", stats.Bytes,
		"elapsed", stats.Duration.Round(time.Millisecond),
		"events_per_sec", fmt.Sprintf("%.0f", stats.EventsPerSec()))
	if stats.Failed() {
		// The daemon refused batches mid-replay (e.g. 413 oversized body,
		// 503 while draining): summarize per status code and exit non-zero
		// so scripted replays can't silently under-deliver a trace.
		for _, code := range sortedKeys(stats.StatusErrors) {
			log.Error("batches refused", "http_status", code, "batches", stats.StatusErrors[code])
		}
		log.Error("replay incomplete",
			"failed_batches", stats.FailedBatches, "failed_events", stats.FailedEvents)
		os.Exit(1)
	}

	wctx, cancel := context.WithTimeout(ctx, *wait)
	defer cancel()
	est, err := client.WaitForEpoch(wctx, *stream, uint64(stats.Tasks))
	if err != nil {
		if est == nil {
			fatal(err)
		}
		log.Warn("estimate did not catch up; printing last one", "err", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(est); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("stream %s  seq %d  window %d tasks / %d events  [%.2f, %.2f)  staleness %.0fms\n",
		est.Stream, est.Seq, est.WindowTasks, est.WindowEvents, est.WindowStart, est.WindowEnd, est.StalenessMS)
	fmt.Printf("estimated λ: %.4f\n\n", est.Lambda)
	fmt.Printf("%-6s  %-10s  %-12s  %-12s\n", "queue", "rate µ̂", "mean service", "mean wait")
	for q := 1; q < len(est.Rates); q++ {
		marker := "  "
		if q == est.Bottleneck {
			marker = "->"
		}
		fmt.Printf("%s q%-3d  %-10.4f  %-12.4f  %-12.4f\n",
			marker, q, est.Rates[q], float64(est.MeanService[q]), float64(est.MeanWait[q]))
	}
}

func fatal(err error) {
	log.Error(err.Error())
	os.Exit(1)
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
