// Command qexperiments regenerates every figure and in-text result of the
// paper's evaluation (§5). Output is plain text: the same rows/series the
// paper plots.
//
// Usage:
//
//	qexperiments -fig 4            # Figure 4 (both panels) + §5.1 medians
//	qexperiments -fig var          # §5.1 estimator-variance comparison
//	qexperiments -fig 5            # Figure 5 (both panels)
//	qexperiments -fig ablations    # DESIGN.md §6 design-choice ablations
//	qexperiments -fig spike        # §1 retrospective spike diagnosis
//	qexperiments -fig robustness   # service-misspecification sweep
//	qexperiments -fig all          # everything (≈4 min on one core)
//	qexperiments -fig all -quick   # reduced sizes for a fast smoke run
//	qexperiments -fig 4 -manifest run.json   # emit a run manifest
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// sectionTiming records one figure's wall-clock for the run manifest.
type sectionTiming struct {
	Section   string  `json:"section"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func main() {
	fig := flag.String("fig", "all", "which artifact to regenerate: 4, 5, var, all")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
	workers := flag.Int("workers", 0, "parallel runs (0 = NumCPU)")
	manifestPath := flag.String("manifest", "", "write a run-manifest JSON (config, timing per figure) to this path")
	flag.Parse()

	runFig4 := *fig == "4" || *fig == "var" || *fig == "all"
	runFig5 := *fig == "5" || *fig == "all"
	runAbl := *fig == "ablations" || *fig == "all"
	runSpike := *fig == "spike" || *fig == "all"
	runRobust := *fig == "robustness" || *fig == "all"
	if !runFig4 && !runFig5 && !runAbl && !runSpike && !runRobust {
		fmt.Fprintf(os.Stderr, "qexperiments: unknown -fig %q (want 4, 5, var, ablations, spike, robustness, all)\n", *fig)
		os.Exit(2)
	}

	manifest := obs.NewManifest("qexperiments", os.Args[1:])
	manifest.Seed = *seed
	manifest.Config = map[string]any{
		"fig": *fig, "quick": *quick, "seed": *seed, "workers": *workers,
	}
	var timings []sectionTiming
	timed := func(section string, f func()) {
		start := time.Now()
		f()
		timings = append(timings, sectionTiming{
			Section:   section,
			ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		})
	}

	if runFig4 {
		timed("fig4", func() {
			cfg := experiment.DefaultFig4Config()
			if *quick {
				cfg.Tasks = 250
				cfg.Reps = 3
				cfg.EMIterations = 40
				cfg.PostSweeps = 30
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			cfg.Workers = *workers
			res, err := experiment.RunFig4(cfg, os.Stderr)
			if err != nil {
				fatal(err)
			}
			if *fig != "var" {
				render(res.ErrorSummary(true))
				fmt.Println()
				render(res.ErrorSummary(false))
				fmt.Println()
				svc, wait := res.MedianErrors(0.05)
				fmt.Printf("§5.1 in-text: at 5%% observed, median abs error: service %.4f (paper 0.033), waiting %.3f (paper 1.35)\n\n",
					svc, wait)
			}
			if *fig == "var" || *fig == "all" {
				sv, bv, table := res.VarianceComparison()
				render(table)
				fmt.Printf("pooled: StEM %.3e vs baseline %.3e (paper: 9.09e-4 vs 1.37e-3, ratio ≈ 0.66; measured ratio %.2f)\n\n",
					sv, bv, sv/bv)
			}
		})
	}

	if runFig5 {
		timed("fig5", func() {
			cfg := experiment.DefaultFig5Config()
			if *quick {
				cfg.App.Requests = 1000
				cfg.App.Duration = 1250
				cfg.Fractions = []float64{0.05, 0.1, 0.25, 0.5}
				cfg.EMIterations = 40
				cfg.PostSweeps = 25
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			cfg.Workers = *workers
			res, err := experiment.RunFig5(cfg, os.Stderr)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("webapp trace: %d requests, %d events; per-web-server requests: %v\n\n",
				res.Config.App.Requests, res.TotalEvents, res.WebRequests)
			render(res.SeriesTable(true))
			fmt.Println()
			render(res.SeriesTable(false))
			fmt.Println()
			render(res.StabilityReport())
			if res.StarvedQueue >= 0 {
				fmt.Printf("\nnote: %s is the deliberately starved server (paper's unstable outlier)\n",
					res.QueueNames[res.StarvedQueue])
			}
		})
	}

	if runAbl {
		timed("ablations", func() {
			cfg := experiment.DefaultAblationConfig()
			if *quick {
				cfg.Tasks = 200
				cfg.Reps = 2
				cfg.Iterations = 300
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			table, _, err := experiment.RunAblations(cfg, os.Stderr)
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			render(table)
		})
	}

	if runSpike {
		timed("spike", func() {
			cfg := experiment.DefaultSpikeConfig()
			if *quick {
				cfg.Tasks = 600
				cfg.EMIterations = 300
				cfg.PostSweeps = 30
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			res, err := experiment.RunSpike(cfg, os.Stderr)
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			render(res.Table())
			q, wait := res.BottleneckDuringSpike()
			fmt.Printf("\nduring the spike (windows marked *), %s was the bottleneck (posterior mean wait %.3f)\n",
				res.QueueNames[q], wait)
		})
	}

	if runRobust {
		timed("robustness", func() {
			cfg := experiment.DefaultRobustnessConfig()
			if *quick {
				cfg.Tasks = 250
				cfg.Reps = 1
				cfg.EMIterations = 250
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			_, table, err := experiment.RunRobustness(cfg, os.Stderr)
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			render(table)
		})
	}

	if *manifestPath != "" {
		if err := manifest.Finish(timings).WriteFile(*manifestPath); err != nil {
			fatal(fmt.Errorf("write manifest: %w", err))
		}
	}
}

func render(t *experiment.Table) {
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qexperiments: %v\n", err)
	os.Exit(1)
}
