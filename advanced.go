package queueinf

import (
	"io"

	"repro/internal/core"
	"repro/internal/trace"
)

// This file exposes the advanced layers of the library: MCMC diagnostics,
// general (non-exponential) service families, model selection, streaming
// estimation over non-stationary workloads, time-windowed retrospective
// diagnosis, and the classical steady-state baseline.

// Re-exported advanced types.
type (
	// Diagnostics holds ESS/R̂ convergence measures and credible
	// intervals for posterior waiting-time estimates.
	Diagnostics = core.Diagnostics
	// DiagnosticsOptions configures PosteriorDiagnostics.
	DiagnosticsOptions = core.DiagnosticsOptions
	// ServiceModel is a parametric service family for the generalized
	// (M/G/1) sampler.
	ServiceModel = core.ServiceModel
	// ExpModel, GammaModel, LogNormalModel and WeibullModel are the
	// built-in families.
	ExpModel       = core.ExpModel
	GammaModel     = core.GammaModel
	LogNormalModel = core.LogNormalModel
	WeibullModel   = core.WeibullModel
	// GeneralEMResult is the outcome of GeneralStEM.
	GeneralEMResult = core.GeneralEMResult
	// CandidateSet names a service family for model selection.
	CandidateSet = core.CandidateSet
	// SelectionResult ranks candidate families.
	SelectionResult = core.SelectionResult
	// BlockEstimate is one block of a streaming estimation run.
	BlockEstimate = core.BlockEstimate
	// StreamingOptions configures StreamingEstimate.
	StreamingOptions = core.StreamingOptions
	// WindowStats summarizes one queue over one time window.
	WindowStats = trace.WindowStats
	// SteadyStateBaseline is the classical steady-state estimator used
	// as a comparison point.
	SteadyStateBaseline = core.SteadyStateBaseline
)

// PosteriorDiagnostics runs several independent Gibbs chains and reports
// per-queue effective sample sizes, Gelman–Rubin R̂, and credible intervals
// for the mean waiting times. The input set is not modified.
func PosteriorDiagnostics(es *EventSet, params Params, rng *RNG, opts DiagnosticsOptions) (*Diagnostics, error) {
	return core.DiagnosePosterior(es, params, rng, opts)
}

// GeneralStEM estimates arbitrary parametric service families
// (Metropolis-within-Gibbs E-steps, per-family refits as M-steps) — the
// paper's "more general service distributions" extension.
func GeneralStEM(es *EventSet, models []ServiceModel, rng *RNG, opts EMOptions) (*GeneralEMResult, error) {
	return core.GeneralStEM(es, models, rng, opts)
}

// DefaultModelCandidates returns the built-in service families for model
// selection: exponential, gamma, lognormal, Weibull.
func DefaultModelCandidates() []CandidateSet { return core.DefaultCandidates() }

// SelectServiceModel fits every candidate family and ranks them by AIC on
// the exactly identified service times of the observation mask.
func SelectServiceModel(es *EventSet, candidates []CandidateSet, rng *RNG, opts EMOptions, minSamples int) (*SelectionResult, error) {
	return core.SelectServiceModel(es, candidates, rng, opts, minSamples)
}

// StreamingEstimate processes the trace in consecutive task blocks with
// warm-started StEM — mini-batch "online" estimation that tracks
// non-stationary workloads.
func StreamingEstimate(es *EventSet, rng *RNG, opts StreamingOptions) ([]BlockEstimate, error) {
	return core.StreamingEstimate(es, rng, opts)
}

// PosteriorWindows averages time-windowed per-queue waiting times over
// posterior sweeps: the retrospective "what was the bottleneck five
// minutes ago?" analysis. Windows partition [lo, hi) into n intervals.
func PosteriorWindows(es *EventSet, params Params, rng *RNG, opts PosteriorOptions, lo, hi float64, n int) ([][]WindowStats, error) {
	return core.PosteriorWindows(es, params, rng, opts, lo, hi, n)
}

// SteadyStateEstimate computes the classical steady-state M/M/1 inversion
// from observed events only — the "traditional queueing theory" baseline
// whose failure under transient overload motivates the paper.
func SteadyStateEstimate(es *EventSet) *SteadyStateBaseline {
	return core.SteadyStateEstimate(es)
}

// SplitRNG returns an independent RNG stream (deterministic given the
// parent's state); useful for parallel experiment replicates.
func SplitRNG(r *RNG) *RNG { return r.Split() }

// WriteTraceCSV emits the trace as CSV for external analysis.
func WriteTraceCSV(es *EventSet, w io.Writer) error { return es.WriteCSV(w) }
