package queueinf

import (
	"math"
	"testing"
)

func TestEstimatedNetworkRecoversRouting(t *testing.T) {
	rng := NewRNG(31)
	net, err := ThreeTier(4, 8, [3]int{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	params, err := func() (Params, error) {
		em, err := StEM(truth.Clone(), rng, EMOptions{Iterations: 50})
		return em.Params, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatedNetwork(truth, params, net.QueueNames())
	if err != nil {
		t.Fatal(err)
	}
	// Expected visits must match the original tiered structure: every
	// task visits tier 1 once, splits across the two tier-2 replicas, and
	// visits the db once.
	v := est.Routing.ExpectedVisits()
	if math.Abs(v[1]-1) > 0.02 || math.Abs(v[4]-1) > 0.02 {
		t.Fatalf("visit rates %v, want 1 at queues 1 and 4", v)
	}
	if math.Abs(v[2]+v[3]-1) > 0.02 {
		t.Fatalf("tier-2 visits %v+%v, want ≈1", v[2], v[3])
	}
	if math.Abs(v[2]-0.5) > 0.07 {
		t.Fatalf("replica split %v, want ≈0.5", v[2])
	}
}

func TestWhatIfPredictsLatencyExplosion(t *testing.T) {
	rng := NewRNG(32)
	// Lightly loaded system: λ=2 into µ=8 tiers (ρ=0.25).
	net, err := ThreeTier(2, 8, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 1500)
	if err != nil {
		t.Fatal(err)
	}
	working := truth.Clone()
	working.ObserveTasks(rng, 0.2)
	em, err := StEM(working, rng, EMOptions{Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	forecasts, err := WhatIf(working, em.Params, rng, 4000, 1, 2, 3, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(forecasts) != 4 {
		t.Fatalf("got %d forecasts", len(forecasts))
	}
	// Latency must increase monotonically with load and explode past
	// saturation (ρ ≈ 0.25·4.5 > 1 at the last factor).
	for i := 1; i < len(forecasts); i++ {
		if forecasts[i].MeanResponse <= forecasts[i-1].MeanResponse {
			t.Errorf("mean response not increasing: %v", forecasts)
		}
	}
	if forecasts[0].Saturated {
		t.Errorf("base load reported saturated: %+v", forecasts[0])
	}
	if !forecasts[3].Saturated {
		t.Errorf("4.5x load not reported saturated: %+v", forecasts[3])
	}
	if forecasts[3].MeanResponse < 8*forecasts[0].MeanResponse {
		t.Errorf("no latency explosion: base %v vs 4.5x %v",
			forecasts[0].MeanResponse, forecasts[3].MeanResponse)
	}
	// Sanity on the base forecast: mean response should be near the
	// analytic 3 queues × 1/(µ−λ) = 3/6 = 0.5.
	if math.Abs(forecasts[0].MeanResponse-0.5) > 0.15 {
		t.Errorf("base mean response %v, want ≈0.5", forecasts[0].MeanResponse)
	}
}

func TestWhatIfValidation(t *testing.T) {
	rng := NewRNG(33)
	net, err := MM1(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Simulate(net, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	params, err := func() (Params, error) {
		em, err := StEM(truth.Clone(), rng, EMOptions{Iterations: 30})
		return em.Params, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WhatIf(truth, params, rng, 0, 1); err == nil {
		t.Error("zero tasks should fail")
	}
	if _, err := WhatIf(truth, params, rng, 10); err == nil {
		t.Error("no factors should fail")
	}
	if _, err := WhatIf(truth, params, rng, 10, -1); err == nil {
		t.Error("negative factor should fail")
	}
}
