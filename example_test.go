package queueinf_test

import (
	"fmt"

	"repro"
)

// The examples below are deterministic (fixed seeds) so their output is
// verified by go test.

// Example demonstrates the paper's core workflow: simulate a three-tier
// network, observe 10% of tasks, and localize the bottleneck.
func Example() {
	rng := queueinf.NewRNG(42)
	net, err := queueinf.ThreeTier(10, 5, [3]int{1, 2, 4})
	if err != nil {
		panic(err)
	}
	truth, err := queueinf.Simulate(net, rng, 500)
	if err != nil {
		panic(err)
	}
	working := truth.Clone()
	working.ObserveTasks(rng, 0.10)

	_, post, err := queueinf.Estimate(working, rng,
		queueinf.EMOptions{Iterations: 400},
		queueinf.PosteriorOptions{Sweeps: 40})
	if err != nil {
		panic(err)
	}
	diag, err := queueinf.Diagnose(post, net.QueueNames())
	if err != nil {
		panic(err)
	}
	b := diag.Bottleneck()
	fmt.Printf("bottleneck: %s (load fraction > 0.5: %v)\n", b.Name, b.LoadFraction > 0.5)
	// Output:
	// bottleneck: web (load fraction > 0.5: true)
}

// ExampleSimulate shows trace generation and its deterministic structure.
func ExampleSimulate() {
	rng := queueinf.NewRNG(7)
	net, err := queueinf.MM1(2, 5)
	if err != nil {
		panic(err)
	}
	es, err := queueinf.Simulate(net, rng, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks:", es.NumTasks)
	fmt.Println("events per task:", len(es.Events)/es.NumTasks)
	fmt.Println("valid:", es.Validate(0) == nil)
	// Output:
	// tasks: 100
	// events per task: 2
	// valid: true
}

// ExampleStreamingEstimate shows mini-batch estimation over a trace.
func ExampleStreamingEstimate() {
	rng := queueinf.NewRNG(9)
	net, err := queueinf.MM1(2, 8)
	if err != nil {
		panic(err)
	}
	truth, err := queueinf.Simulate(net, rng, 400)
	if err != nil {
		panic(err)
	}
	truth.ObserveTasks(rng, 0.5)
	blocks, err := queueinf.StreamingEstimate(truth, rng, queueinf.StreamingOptions{
		Blocks: 2,
		EM:     queueinf.EMOptions{Iterations: 200},
	})
	if err != nil {
		panic(err)
	}
	for _, b := range blocks {
		fmt.Printf("tasks [%d,%d): λ̂ within 25%% of 2: %v\n",
			b.FromTask, b.ToTask, b.Params.Rates[0] > 1.5 && b.Params.Rates[0] < 2.5)
	}
	// Output:
	// tasks [0,200): λ̂ within 25% of 2: true
	// tasks [200,400): λ̂ within 25% of 2: true
}

// ExampleSelectServiceModel ranks service families on partially observed
// data.
func ExampleSelectServiceModel() {
	rng := queueinf.NewRNG(11)
	net, err := queueinf.MM1(2, 6)
	if err != nil {
		panic(err)
	}
	truth, err := queueinf.Simulate(net, rng, 600)
	if err != nil {
		panic(err)
	}
	truth.ObserveTasks(rng, 0.5)
	res, err := queueinf.SelectServiceModel(truth, queueinf.DefaultModelCandidates(), rng,
		queueinf.EMOptions{Iterations: 150}, 10)
	if err != nil {
		panic(err)
	}
	fmt.Println("families ranked:", len(res.Ranked))
	fmt.Println("exponential in top two:", res.Ranked[0].Name == "exponential" || res.Ranked[1].Name == "exponential")
	// Output:
	// families ranked: 4
	// exponential in top two: true
}
