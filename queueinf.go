// Package queueinf is the public API of this repository: probabilistic
// inference in queueing networks, reproducing Sutton & Jordan's
// "Probabilistic Inference in Queueing Networks" (2008).
//
// The package treats a network of M/M/1 FIFO queues as a latent-variable
// probabilistic model. Given a trace in which only a subset of arrival and
// departure times were measured (but per-queue arrival order is known), it
//
//   - samples the posterior over the unobserved times with a Gibbs sampler,
//   - estimates the arrival rate λ and per-queue service rates µ_q with
//     stochastic EM, and
//   - reports per-queue mean service and waiting times, which localize
//     performance problems: a queue with a disproportionate waiting time is
//     load-bound; one with a large service time is intrinsically slow.
//
// # Quick start
//
//	rng := queueinf.NewRNG(1)
//	net, _ := queueinf.ThreeTier(10, 5, [3]int{1, 2, 4})
//	truth, _ := queueinf.Simulate(net, rng, 1000)
//	working := truth.Clone()
//	working.ObserveTasks(rng, 0.10) // keep 10% of tasks' arrivals
//	em, post, _ := queueinf.Estimate(working, rng,
//	    queueinf.EMOptions{}, queueinf.PosteriorOptions{})
//	fmt.Println(em.Params.MeanServiceTimes(), post.MeanWait)
//
// The deeper layers are exposed as type aliases so that applications can
// compose them directly: the generative model (Network, EventSet), the
// simulator, the sampler (Gibbs), the estimators (StEM, MCEM, Posterior)
// and the experiment harness used to regenerate the paper's figures lives
// under cmd/qexperiments.
package queueinf

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qnet"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/webapp"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Re-exported core types. See the respective internal packages for full
// documentation; the aliases make them part of the public API surface.
type (
	// RNG is the deterministic random-number generator all APIs consume.
	RNG = xrand.RNG
	// Dist is a service-time (or interarrival) distribution.
	Dist = dist.Dist
	// Network is a queueing-network topology.
	Network = qnet.Network
	// Queue is one station of a network.
	Queue = qnet.Queue
	// TierSpec describes one tier of a multi-tier network.
	TierSpec = qnet.TierSpec
	// EventSet is a linked trace of task events.
	EventSet = trace.EventSet
	// Event is one arrival/departure record.
	Event = trace.Event
	// Params is the rate vector (λ, µ_1, ..., µ_n).
	Params = core.Params
	// Gibbs is the posterior sampler over unobserved times.
	Gibbs = core.Gibbs
	// Initializer constructs feasible starting states.
	Initializer = core.Initializer
	// OrderInitializer is the fast feasibility construction.
	OrderInitializer = core.OrderInitializer
	// LPInitializer is the paper's linear-programming initialization.
	LPInitializer = core.LPInitializer
	// EMOptions configures StEM/MCEM.
	EMOptions = core.EMOptions
	// EMResult is a parameter-estimation outcome.
	EMResult = core.EMResult
	// PosteriorOptions configures posterior summarization.
	PosteriorOptions = core.PosteriorOptions
	// PosteriorSummary holds posterior-mean service/waiting estimates.
	PosteriorSummary = core.PosteriorSummary
	// WebAppConfig describes the simulated three-tier web application of
	// the paper's §5.2.
	WebAppConfig = webapp.Config
	// WorkloadGenerator produces task entry-time sequences.
	WorkloadGenerator = workload.Generator
)

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// Exponential returns an exponential distribution with the given rate.
func Exponential(rate float64) Dist { return dist.NewExponential(rate) }

// Tiered builds a multi-tier network with the given interarrival
// distribution (queue q0's service distribution).
func Tiered(interarrival Dist, tiers []TierSpec) (*Network, error) {
	return qnet.Tiered(interarrival, tiers)
}

// ThreeTier builds one of the paper's synthetic three-tier structures:
// Poisson(lambda) arrivals, exponential(mu) service at every queue, and the
// given replica counts per tier.
func ThreeTier(lambda, mu float64, replicas [3]int) (*Network, error) {
	return qnet.PaperSynthetic(lambda, mu, replicas)
}

// MM1 builds the single-queue network: Poisson(lambda) into exponential(mu).
func MM1(lambda, mu float64) (*Network, error) { return qnet.SingleMM1(lambda, mu) }

// WebApp builds the paper's §5.2 web-application deployment and returns a
// simulated instrumented trace for it.
func WebApp(cfg WebAppConfig, rng *RNG) (*EventSet, *Network, error) {
	return webapp.GenerateTrace(cfg, rng)
}

// DefaultWebAppConfig returns the paper-equivalent web-application setup.
func DefaultWebAppConfig() WebAppConfig { return webapp.DefaultConfig() }

// Simulate pushes tasks through the network with Poisson-style entries
// drawn from q0's service distribution and returns the complete trace.
func Simulate(net *Network, rng *RNG, tasks int) (*EventSet, error) {
	return sim.Run(net, rng, sim.Options{Tasks: tasks})
}

// SimulateEntries is Simulate with explicit task entry times (e.g. from a
// ramped or spiked workload generator).
func SimulateEntries(net *Network, rng *RNG, entries []float64) (*EventSet, error) {
	return sim.Run(net, rng, sim.Options{Tasks: len(entries), Entries: entries})
}

// PoissonWorkload, RampWorkload and SpikeWorkload expose the workload
// generators used in the paper's experiments and motivating scenarios.
func PoissonWorkload(rate float64) WorkloadGenerator { return workload.NewPoisson(rate) }

// RampWorkload ramps the arrival rate linearly over duration, then holds.
func RampWorkload(startRate, endRate, duration float64) WorkloadGenerator {
	return workload.LinearRamp(startRate, endRate, duration)
}

// SpikeWorkload multiplies the base rate by burstFactor on
// [start, start+width).
func SpikeWorkload(baseRate, burstFactor, start, width float64) WorkloadGenerator {
	return workload.Spike(baseRate, burstFactor, start, width)
}

// NoBurnIn disables burn-in in EMOptions/PosteriorOptions (whose zero
// value selects the default burn-in: Iterations/2 and Sweeps/5).
const NoBurnIn = core.NoBurnIn

// StEM estimates the rate parameters from a partially observed trace with
// stochastic EM (paper §4). The event set is mutated in place.
func StEM(es *EventSet, rng *RNG, opts EMOptions) (*EMResult, error) {
	return core.StEM(es, rng, opts)
}

// MCEM is the Monte Carlo EM variant with multiple Gibbs sweeps per E-step.
func MCEM(es *EventSet, rng *RNG, sweepsPerE int, opts EMOptions) (*EMResult, error) {
	return core.MCEM(es, rng, sweepsPerE, opts)
}

// Posterior summarizes the posterior over the unobserved times with the
// given parameters held fixed.
func Posterior(es *EventSet, params Params, rng *RNG, opts PosteriorOptions) (*PosteriorSummary, error) {
	return core.Posterior(es, params, rng, opts)
}

// Estimate runs the full pipeline: StEM for the rates, then the posterior
// pass with those rates fixed.
func Estimate(es *EventSet, rng *RNG, em EMOptions, post PosteriorOptions) (*EMResult, *PosteriorSummary, error) {
	return core.Estimate(es, rng, em, post)
}

// LoadTraceJSON reads a trace written by SaveTraceJSON (or cmd/qsim).
func LoadTraceJSON(r io.Reader) (*EventSet, error) { return trace.ReadJSON(r) }

// SaveTraceJSON writes the trace in the JSON interchange format.
func SaveTraceJSON(es *EventSet, w io.Writer) error { return es.WriteJSON(w) }

// ---------------------------------------------------------------------------
// Performance localization

// QueueDiagnosis classifies one queue's estimated behaviour.
type QueueDiagnosis struct {
	Queue       int
	Name        string
	MeanService float64
	MeanWait    float64
	// LoadFraction is wait/(wait+service): near 1 means the latency is
	// load-induced queueing, near 0 means intrinsic service cost.
	LoadFraction float64
}

// Diagnosis ranks queues by estimated mean waiting time — the paper's
// performance-localization use case ("which parts of the system were the
// bottleneck?") — and distinguishes load-induced waiting from intrinsic
// service cost.
type Diagnosis struct {
	// Ranked is sorted by MeanWait, worst first, excluding q0.
	Ranked []QueueDiagnosis
}

// Bottleneck returns the worst queue.
func (d *Diagnosis) Bottleneck() QueueDiagnosis { return d.Ranked[0] }

// Render writes a human-readable localization report.
func (d *Diagnosis) Render(w io.Writer) error {
	for i, q := range d.Ranked {
		kind := "service-bound (intrinsic cost)"
		if q.LoadFraction > 0.5 {
			kind = "load-bound (queueing delay)"
		}
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		if _, err := fmt.Fprintf(w, "%s %-10s wait=%-9.4f service=%-9.4f load-fraction=%.2f  %s\n",
			marker, q.Name, q.MeanWait, q.MeanService, q.LoadFraction, kind); err != nil {
			return err
		}
	}
	return nil
}

// Diagnose builds a Diagnosis from posterior estimates. names must have one
// entry per queue (Network.QueueNames()).
func Diagnose(sum *PosteriorSummary, names []string) (*Diagnosis, error) {
	if len(names) != len(sum.MeanWait) {
		return nil, fmt.Errorf("queueinf: %d names for %d queues", len(names), len(sum.MeanWait))
	}
	var d Diagnosis
	for q := 1; q < len(names); q++ {
		wait, svc := sum.MeanWait[q], sum.MeanService[q]
		if math.IsNaN(wait) || math.IsNaN(svc) {
			continue
		}
		lf := 0.0
		if wait+svc > 0 {
			lf = wait / (wait + svc)
		}
		d.Ranked = append(d.Ranked, QueueDiagnosis{
			Queue: q, Name: names[q],
			MeanService: svc, MeanWait: wait, LoadFraction: lf,
		})
	}
	if len(d.Ranked) == 0 {
		return nil, fmt.Errorf("queueinf: no queues with estimates")
	}
	sort.Slice(d.Ranked, func(i, j int) bool { return d.Ranked[i].MeanWait > d.Ranked[j].MeanWait })
	return &d, nil
}
