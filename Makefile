GO ?= go

.PHONY: build test race verify bench bench-all benchdiff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify:
	sh scripts/verify.sh

# bench runs the Gibbs-engine worker-grid benchmarks and writes
# BENCH_gibbs.json; bench-all smoke-runs every benchmark once.
bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# benchdiff re-runs the worker-grid benchmarks and fails on a >20% ns/op
# or any allocs/op regression in the sweep benchmarks vs BENCH_gibbs.json.
benchdiff:
	sh scripts/benchdiff.sh

