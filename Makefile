GO ?= go

.PHONY: build test race verify bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify:
	sh scripts/verify.sh

# bench runs the Gibbs-engine worker-grid benchmarks and writes
# BENCH_gibbs.json; bench-all smoke-runs every benchmark once.
bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
