GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race verify bench bench-all benchdiff profile fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify:
	sh scripts/verify.sh

# bench runs the Gibbs-engine worker-grid and ingest data-plane
# benchmarks and writes BENCH_gibbs.json + BENCH_ingest.json; bench-all
# smoke-runs every benchmark once.
bench:
	sh scripts/bench.sh

bench-all:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# benchdiff re-runs both benchmark suites and fails on a >20% ns/op or
# any allocs/op regression in the sweep benchmarks vs BENCH_gibbs.json,
# and on a < 2x fast-vs-stdlib speedup or allocs/event growth in the
# ingest benchmarks vs BENCH_ingest.json.
benchdiff:
	sh scripts/benchdiff.sh

# profile captures CPU and heap pprof of the posterior hot path into
# results/ with -top summaries; see scripts/profile.sh for knobs.
profile:
	sh scripts/profile.sh

# fuzz runs the two wire-format fuzzers (NDJSON event grammar, WAL record
# framing) for a short fixed budget each; raise with FUZZTIME=1m.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzNDJSONDecode -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzWALRecord -fuzztime $(FUZZTIME) ./internal/wal

